// Unit tests: task-set text format and JSON trace export.
#include <gtest/gtest.h>

#include "harness/evaluation.hpp"
#include "io/taskset_io.hpp"
#include "io/trace_json.hpp"
#include "workload/scenarios.hpp"

namespace mkss::io {
namespace {

TEST(TasksetIo, ParsesTheDocumentedFormat) {
  const auto ts = parse_taskset_string(
      "# comment line\n"
      "control 5 4 3 2 4\n"
      "\n"
      "video 10 10 3 1 2   # trailing comment\n");
  ASSERT_EQ(ts.size(), 2u);
  EXPECT_EQ(ts[0].name, "control");
  EXPECT_EQ(ts[0].deadline, core::from_ms(std::int64_t{4}));
  EXPECT_EQ(ts[1].m, 1u);
}

TEST(TasksetIo, ParsesFractionalTimes) {
  const auto ts = parse_taskset_string("t 5 2.5 2 2 4\n");
  EXPECT_EQ(ts[0].deadline, core::from_ms(2.5));
}

TEST(TasksetIo, RejectsMalformedLines) {
  EXPECT_THROW(parse_taskset_string("t 5 4\n"), std::runtime_error);
  EXPECT_THROW(parse_taskset_string("t 5 4 3 2 4 extra\n"), std::runtime_error);
  EXPECT_THROW(parse_taskset_string(""), std::runtime_error);
}

TEST(TasksetIo, RejectsInvalidTasks) {
  EXPECT_THROW(parse_taskset_string("t 5 6 3 2 4\n"), std::runtime_error);  // D > P
  EXPECT_THROW(parse_taskset_string("t 5 4 3 0 4\n"), std::runtime_error);  // m = 0
  EXPECT_THROW(parse_taskset_string("t 5 4 3 5 4\n"), std::runtime_error);  // m > k
}

TEST(TasksetIo, ErrorMessagesCarryLineNumbers) {
  try {
    parse_taskset_string("good 5 4 3 2 4\nbad 1 2\n");
    FAIL() << "expected throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

TEST(TasksetIo, RejectsNonFiniteAndNegativeValues) {
  EXPECT_THROW(parse_taskset_string("t nan 4 3 2 4\n"), ParseError);
  EXPECT_THROW(parse_taskset_string("t 5 inf 3 2 4\n"), ParseError);
  EXPECT_THROW(parse_taskset_string("t 5 4 -3 2 4\n"), ParseError);
  EXPECT_THROW(parse_taskset_string("t -5 4 3 2 4\n"), ParseError);
  EXPECT_THROW(parse_taskset_string("t 0 4 3 2 4\n"), ParseError);
}

TEST(TasksetIo, RejectsNonNumericAndPartiallyNumericFields) {
  EXPECT_THROW(parse_taskset_string("t five 4 3 2 4\n"), ParseError);
  EXPECT_THROW(parse_taskset_string("t 5x 4 3 2 4\n"), ParseError);  // garbage suffix
  EXPECT_THROW(parse_taskset_string("t 5 4 3 2.5 4\n"), ParseError);  // fractional m
  EXPECT_THROW(parse_taskset_string("t 5 4 3 -2 4\n"), ParseError);   // negative m
}

TEST(TasksetIo, RejectsOverflowingValues) {
  // Beyond the supported time range (would overflow the tick arithmetic).
  EXPECT_THROW(parse_taskset_string("t 1e300 1e300 3 2 4\n"), ParseError);
  // m/k beyond uint32.
  EXPECT_THROW(parse_taskset_string("t 5 4 3 2 99999999999\n"), ParseError);
}

TEST(TasksetIo, MalformedFieldErrorsNameTheField) {
  try {
    parse_taskset_string("t 5 nan 3 2 4\n");
    FAIL() << "expected throw";
  } catch (const ParseError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("line 1"), std::string::npos);
    EXPECT_NE(msg.find("deadline"), std::string::npos);
  }
}

TEST(TasksetIo, SerializationRoundTrips) {
  const auto original = workload::paper_fig3_taskset();  // has fractional D
  const auto round = parse_taskset_string(serialize_taskset(original));
  ASSERT_EQ(round.size(), original.size());
  for (std::size_t i = 0; i < original.size(); ++i) {
    EXPECT_EQ(round[i], original[i]);
  }
}

TEST(TasksetIo, SerializationIsTickExact) {
  // Values with more than six significant digits were silently truncated by
  // the old %.6g formatter (1234.567 ms -> "1234.57"); the fixed-point
  // formatter must round-trip every tick count exactly.
  const core::Task t = core::Task::from_ms(1234.567, 1234.333, 987.001, 3, 7,
                                           "longtask");
  const core::TaskSet original({t});
  const auto round = parse_taskset_string(serialize_taskset(original));
  EXPECT_EQ(round[0].period, original[0].period);
  EXPECT_EQ(round[0].deadline, original[0].deadline);
  EXPECT_EQ(round[0].wcet, original[0].wcet);
  EXPECT_EQ(round[0].period, core::from_ms(1234.567));
}

TEST(TasksetIo, MissingFileThrows) {
  EXPECT_THROW(parse_taskset_file("/nonexistent/path/ts.txt"), std::runtime_error);
}

TEST(TraceJson, ContainsAllSections) {
  const auto ts = workload::paper_fig1_taskset();
  sim::SimConfig cfg;
  cfg.horizon = core::from_ms(std::int64_t{20});
  const auto run = harness::run_one(
      {.ts = ts, .kind = sched::SchemeKind::kSelective, .sim = cfg});
  const std::string json = trace_to_json(run.trace, ts);

  for (const char* key :
       {"\"horizon_ms\"", "\"tasks\"", "\"segments\"", "\"jobs\"", "\"stats\"",
        "\"copies\"", "\"eligible_ms\"", "\"death_time_ms\"", "\"outcome\"",
        "\"frequency\""}) {
    EXPECT_NE(json.find(key), std::string::npos) << key;
  }
  EXPECT_NE(json.find("\"tau1\""), std::string::npos);
  EXPECT_NE(json.find("\"death_time_ms\": [null, null]"), std::string::npos);
}

TEST(TraceJson, BalancedBracesAndBrackets) {
  const auto ts = workload::paper_fig1_taskset();
  sim::SimConfig cfg;
  cfg.horizon = core::from_ms(std::int64_t{40});
  const auto run =
      harness::run_one({.ts = ts, .kind = sched::SchemeKind::kDp, .sim = cfg});
  const std::string json = trace_to_json(run.trace, ts);
  int braces = 0, brackets = 0;
  for (const char c : json) {
    braces += (c == '{') - (c == '}');
    brackets += (c == '[') - (c == ']');
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
}

TEST(TraceJson, ReportsDeathTime) {
  const auto ts = workload::paper_fig1_taskset();
  fault::ScenarioFaultPlan plan(sim::PermanentFault{sim::kSpare, core::from_ms(std::int64_t{3})},
                                {}, 1);
  sim::SimConfig cfg;
  cfg.horizon = core::from_ms(std::int64_t{20});
  const auto run = harness::run_one(
      {.ts = ts, .kind = sched::SchemeKind::kSt, .faults = &plan, .sim = cfg});
  const std::string json = trace_to_json(run.trace, ts);
  EXPECT_NE(json.find("\"death_time_ms\": [null, 3.000]"), std::string::npos);
}

}  // namespace
}  // namespace mkss::io
