// The admission service and its wire protocol: JSON parser strictness,
// request codec round-trips, the stable error-code contract (a malformed
// request is a response, never a dead server), strict request-order
// emission with byte-identical streams across worker counts, backpressure
// telemetry, and the shared JsonWriter's layout/number policies.
#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "mkss.hpp"

namespace {

using namespace mkss;

constexpr const char* kFig1 =
    "control 5 4 3 2 4\n"
    "video   10 10 3 1 2\n";

/// One request line over the Figure-1 set; tweak fields via the callback.
template <typename Fn>
std::string request_line(Fn&& tweak) {
  io::ServeRequest req;
  req.id = "r";
  req.taskset = kFig1;
  tweak(req);
  return io::serialize_serve_request(req);
}

std::string ok_request(const std::string& id, const std::string& scheme) {
  return request_line([&](io::ServeRequest& r) {
    r.id = id;
    r.scheme = scheme;
    r.horizon = core::from_ms(std::int64_t{100});
  });
}

/// Runs `lines` through a service at the given worker count and returns the
/// concatenated response stream plus telemetry.
std::pair<std::string, harness::ServeTelemetry> run_service(
    const std::vector<std::string>& lines, std::size_t workers,
    std::size_t queue_depth = 64) {
  harness::ServeConfig cfg;
  cfg.workers = workers;
  cfg.queue_depth = queue_depth;
  std::string stream;
  std::uint64_t expect_seq = 0;
  harness::AdmissionService service(
      cfg, [&](std::uint64_t seq, const std::string& line) {
        EXPECT_EQ(seq, expect_seq++);  // strict submit-order emission
        stream += line;
        stream += '\n';
      });
  for (const std::string& line : lines) service.submit(line);
  return {stream, service.finish()};
}

// --- JSON value parser ----------------------------------------------------

TEST(ParseJson, ParsesScalarsContainersAndEscapes) {
  std::string error;
  const auto v = io::parse_json(
      R"({"s": "a\"\\\n\u0041", "n": -2.5e1, "b": true, "z": null,)"
      R"( "arr": [1, 2], "obj": {"k": false}})",
      &error);
  ASSERT_TRUE(v.has_value()) << error;
  EXPECT_EQ(v->find("s")->string, "a\"\\\nA");
  EXPECT_EQ(v->find("n")->number, -25.0);
  EXPECT_TRUE(v->find("b")->boolean);
  EXPECT_EQ(v->find("z")->kind, io::JsonValue::Kind::kNull);
  ASSERT_EQ(v->find("arr")->items.size(), 2u);
  EXPECT_EQ(v->find("arr")->items[1].number, 2.0);
  EXPECT_FALSE(v->find("obj")->find("k")->boolean);
  EXPECT_EQ(v->find("missing"), nullptr);
}

TEST(ParseJson, RejectsTrailingGarbageWithPosition) {
  std::string error;
  EXPECT_FALSE(io::parse_json("{} x", &error).has_value());
  EXPECT_NE(error.find("at byte"), std::string::npos) << error;
}

TEST(ParseJson, RejectsMalformedDocuments) {
  std::string error;
  for (const char* bad : {"", "{", "[1,]", "{\"a\" 1}", "nul", "\"\\q\"",
                          "01", "1e", "+1", "\"unterminated"}) {
    EXPECT_FALSE(io::parse_json(bad, &error).has_value())
        << "accepted: " << bad;
  }
}

TEST(ParseJson, RejectsRunawayNesting) {
  std::string deep(200, '[');
  deep += std::string(200, ']');
  std::string error;
  EXPECT_FALSE(io::parse_json(deep, &error).has_value());
  EXPECT_NE(error.find("nest"), std::string::npos) << error;
}

// --- Error-code / exit-code contract --------------------------------------

TEST(ServeProtocol, ErrorCodesMirrorCliExitCodes) {
  EXPECT_EQ(io::serve_code_exit(""), 0);
  EXPECT_EQ(io::serve_code_exit(io::kServeCodeParse), 2);
  EXPECT_EQ(io::serve_code_exit(io::kServeCodeBadRequest), 2);
  EXPECT_EQ(io::serve_code_exit(io::kServeCodeUnknownScheme), 2);
  EXPECT_EQ(io::serve_code_exit(io::kServeCodeEnvelope), 2);
  EXPECT_EQ(io::serve_code_exit(io::kServeCodeBadInput), 3);
  EXPECT_EQ(io::serve_code_exit(io::kServeCodeAuditViolation), 4);
  EXPECT_EQ(io::serve_code_exit(io::kServeCodeInternal), 1);
}

// --- Request codec --------------------------------------------------------

TEST(ServeProtocol, RequestRoundTripsFieldIdentically) {
  io::ServeRequest req;
  req.id = "round \"trip\"\n";
  req.taskset = kFig1;
  req.scheme = "global_fp";
  req.procs = 4;
  req.horizon = core::from_ms(std::int64_t{250});
  req.permanent = sim::PermanentFault{2, core::from_ms(std::int64_t{7})};
  req.lambda_per_ms = 1e-6;
  req.seed = 987654321;
  req.audit = false;
  req.timing = true;

  const auto parsed = io::parse_serve_request(io::serialize_serve_request(req));
  ASSERT_TRUE(parsed.error_code.empty()) << parsed.error_message;
  const io::ServeRequest& r = parsed.req;
  EXPECT_EQ(r.id, req.id);
  EXPECT_EQ(r.taskset, req.taskset);
  EXPECT_TRUE(r.taskset_path.empty());
  EXPECT_EQ(r.scheme, req.scheme);
  EXPECT_EQ(r.procs, req.procs);
  EXPECT_EQ(r.horizon, req.horizon);
  ASSERT_TRUE(r.permanent.has_value());
  EXPECT_EQ(r.permanent->proc, req.permanent->proc);
  EXPECT_EQ(r.permanent->time, req.permanent->time);
  EXPECT_EQ(r.lambda_per_ms, req.lambda_per_ms);  // %a hex: bit-exact
  EXPECT_EQ(r.seed, req.seed);
  EXPECT_EQ(r.audit, req.audit);
  EXPECT_EQ(r.timing, req.timing);
}

TEST(ServeProtocol, MinimalRequestGetsDocumentedDefaults) {
  const auto parsed = io::parse_serve_request(
      R"({"v": 1, "id": "d", "taskset": "control 5 4 3 2 4\n"})");
  ASSERT_TRUE(parsed.error_code.empty()) << parsed.error_message;
  EXPECT_EQ(parsed.req.scheme, "selective");
  EXPECT_EQ(parsed.req.procs, 2u);
  EXPECT_EQ(parsed.req.horizon, core::Ticks{0});
  EXPECT_FALSE(parsed.req.permanent.has_value());
  EXPECT_EQ(parsed.req.lambda_per_ms, 0.0);
  EXPECT_EQ(parsed.req.seed, 1u);
  EXPECT_TRUE(parsed.req.audit);
  EXPECT_FALSE(parsed.req.timing);
}

TEST(ServeProtocol, RejectsBadRequestsWithStableCodes) {
  const struct {
    const char* line;
    const char* code;
  } cases[] = {
      {"not json", io::kServeCodeParse},
      {R"({"v": 2, "id": "x", "taskset": "t"})", io::kServeCodeBadRequest},
      {R"({"v": 1, "taskset": "t"})", io::kServeCodeBadRequest},  // no id
      {R"({"v": 1, "id": "x", "taskset": "t", "typo": 1})",
       io::kServeCodeBadRequest},
      {R"({"v": 1, "id": "x"})", io::kServeCodeBadRequest},  // no task set
      {R"({"v": 1, "id": "x", "taskset": "t", "taskset_path": "p"})",
       io::kServeCodeBadRequest},  // both
      {R"({"v": 1, "id": "x", "taskset": "t", "procs": 1})",
       io::kServeCodeBadRequest},
      {R"({"v": 1, "id": "x", "taskset": "t", "horizon_ms": -5})",
       io::kServeCodeBadRequest},
      {R"({"v": 1, "id": "x", "taskset": "t", "seed": 1.5})",
       io::kServeCodeBadRequest},
  };
  for (const auto& c : cases) {
    const auto parsed = io::parse_serve_request(c.line);
    EXPECT_EQ(parsed.error_code, c.code) << c.line;
  }
}

TEST(ServeProtocol, IdIsEchoedEvenFromRejectedRequests) {
  const auto parsed =
      io::parse_serve_request(R"({"v": 7, "id": "keep-me", "taskset": "t"})");
  EXPECT_EQ(parsed.error_code, io::kServeCodeBadRequest);
  EXPECT_EQ(parsed.req.id, "keep-me");
}

// --- Single-request semantics (process) -----------------------------------

TEST(AdmissionService, AnswersScheduableSetWithVerdictAndStats) {
  harness::RunContext ctx;
  const auto response = harness::AdmissionService::process(
      ok_request("ok1", "selective"), ctx, harness::ServeConfig{});
  EXPECT_TRUE(response.ok) << response.error_message;
  EXPECT_EQ(response.id, "ok1");
  ASSERT_TRUE(response.has_admission);
  EXPECT_TRUE(response.admission.schedulable);
  ASSERT_TRUE(response.has_simulation);
  EXPECT_EQ(response.scheme, "selective");
  EXPECT_TRUE(response.audited);
  EXPECT_TRUE(response.mk_satisfied);
  EXPECT_GT(response.jobs_released, 0u);
  EXPECT_GT(response.energy_total, 0.0);
  EXPECT_FALSE(response.wall_us.has_value());  // timing is opt-in
}

TEST(AdmissionService, TimingIsOptInPerRequest) {
  harness::RunContext ctx;
  const auto response = harness::AdmissionService::process(
      request_line([](io::ServeRequest& r) {
        r.timing = true;
        r.horizon = core::from_ms(std::int64_t{100});
      }),
      ctx, harness::ServeConfig{});
  ASSERT_TRUE(response.ok) << response.error_message;
  ASSERT_TRUE(response.wall_us.has_value());
  EXPECT_GT(*response.wall_us, 0.0);
}

TEST(AdmissionService, MapsFailuresToStableCodes) {
  harness::RunContext ctx;
  const harness::ServeConfig cfg;

  auto code = [&](const std::string& line) {
    return harness::AdmissionService::process(line, ctx, cfg).error_code;
  };
  EXPECT_EQ(code("{broken"), io::kServeCodeParse);
  EXPECT_EQ(code(request_line([](io::ServeRequest& r) {
              r.scheme = "no_such_scheme";
            })),
            io::kServeCodeUnknownScheme);
  EXPECT_EQ(code(request_line([](io::ServeRequest& r) {
              r.taskset = "bad nan 1 1 1 2\n";
            })),
            io::kServeCodeBadInput);
  EXPECT_EQ(code(request_line([](io::ServeRequest& r) {
              r.taskset.clear();
              r.taskset_path = "/nonexistent/corpus.txt";
            })),
            io::kServeCodeBadInput);
  // st is a dual-processor scheme; procs=4 violates its envelope, as does a
  // permanent fault on a processor the platform does not have.
  EXPECT_EQ(code(request_line([](io::ServeRequest& r) {
              r.scheme = "st";
              r.procs = 4;
            })),
            io::kServeCodeEnvelope);
  EXPECT_EQ(code(request_line([](io::ServeRequest& r) {
              r.permanent = sim::PermanentFault{5, core::from_ms(std::int64_t{7})};
            })),
            io::kServeCodeEnvelope);
}

TEST(AdmissionService, ErrorResponsesSerializeWithNullIdWhenUnknown) {
  harness::RunContext ctx;
  const auto response = harness::AdmissionService::process(
      "{broken", ctx, harness::ServeConfig{});
  const std::string line = io::serialize_serve_response(response);
  EXPECT_NE(line.find("\"id\": null"), std::string::npos) << line;
  EXPECT_NE(line.find("\"ok\": false"), std::string::npos) << line;
  EXPECT_NE(line.find("parse-error"), std::string::npos) << line;
}

// --- The service: ordering, resilience, identity, backpressure ------------

TEST(AdmissionService, ServerSurvivesErrorsAndAnswersInOrder) {
  const std::vector<std::string> lines = {
      ok_request("a", "st"),
      "garbage",
      ok_request("b", "dp"),
      request_line([](io::ServeRequest& r) { r.scheme = "no_such_scheme"; }),
      ok_request("c", "selective"),
  };
  const auto [stream, telemetry] = run_service(lines, 2);

  std::istringstream in(stream);
  std::string line;
  std::vector<std::string> ids;
  while (std::getline(in, line)) {
    const auto at = line.find("\"id\": ");
    ASSERT_NE(at, std::string::npos) << line;
    ids.push_back(line.substr(at + 6, line.find(',', at) - at - 6));
  }
  EXPECT_EQ(ids, (std::vector<std::string>{"\"a\"", "null", "\"b\"", "\"r\"",
                                           "\"c\""}));
  EXPECT_EQ(telemetry.requests, 5u);
  EXPECT_EQ(telemetry.ok, 3u);
  EXPECT_EQ(telemetry.errors, 2u);
}

TEST(AdmissionService, StreamIsByteIdenticalForEveryWorkerCount) {
  std::vector<std::string> lines;
  for (int i = 0; i < 12; ++i) {
    for (const char* scheme : {"st", "dp", "greedy", "selective"}) {
      lines.push_back(ok_request(scheme + std::to_string(i), scheme));
    }
    lines.push_back("malformed #" + std::to_string(i));
  }
  const auto [reference, telemetry] = run_service(lines, 1);
  EXPECT_EQ(telemetry.requests, lines.size());
  for (const std::size_t workers : {std::size_t{2}, std::size_t{0}}) {
    const auto [stream, t2] = run_service(lines, workers);
    EXPECT_EQ(stream, reference) << "workers=" << workers;
    EXPECT_EQ(t2.ok, telemetry.ok);
    EXPECT_EQ(t2.errors, telemetry.errors);
  }
}

TEST(AdmissionService, BackpressureBoundsTheQueue) {
  std::vector<std::string> lines;
  for (int i = 0; i < 16; ++i) lines.push_back(ok_request("q" + std::to_string(i), "st"));
  const auto [stream, telemetry] = run_service(lines, 2, /*queue_depth=*/1);
  EXPECT_EQ(telemetry.requests, 16u);
  EXPECT_EQ(telemetry.ok, 16u);
  EXPECT_LE(telemetry.max_queue_depth, 1u);  // submit() blocked instead
  EXPECT_EQ(std::count(stream.begin(), stream.end(), '\n'), 16);
}

TEST(AdmissionService, ServeStreamAnswersEachLineAndSkipsBlanks) {
  std::istringstream in(ok_request("s1", "st") + "\n\n   \n" +
                        ok_request("s2", "dp") + "\n");
  std::ostringstream out;
  harness::ServeConfig cfg;
  const auto telemetry = harness::serve_stream(in, out, cfg);
  EXPECT_EQ(telemetry.requests, 2u);
  EXPECT_EQ(telemetry.ok, 2u);
  const std::string stream = out.str();
  EXPECT_EQ(std::count(stream.begin(), stream.end(), '\n'), 2);
  EXPECT_NE(stream.find("\"id\": \"s1\""), std::string::npos);
  EXPECT_NE(stream.find("\"id\": \"s2\""), std::string::npos);
}

// --- JsonWriter -----------------------------------------------------------

TEST(JsonWriter, InlineAndBlockScopesMatchTheDocumentedLayout) {
  io::JsonWriter w;
  w.begin_object(io::JsonWriter::Scope::kBlock);
  w.key("name");
  w.string("x");
  w.key("runs");
  w.begin_array(io::JsonWriter::Scope::kBlock);
  w.begin_object();
  w.key("n");
  w.u64(1);
  w.end_object();
  w.end_array();
  w.key("empty");
  w.begin_array(io::JsonWriter::Scope::kBlock);
  w.end_array();
  w.end_object();
  EXPECT_EQ(w.take(),
            "{\n"
            "  \"name\": \"x\",\n"
            "  \"runs\": [\n"
            "    {\"n\": 1}\n"
            "  ],\n"
            "  \"empty\": [\n"
            "  ]\n"
            "}");
}

TEST(JsonWriter, NumberPoliciesAreExact) {
  io::JsonWriter w;
  w.begin_array();
  w.fixed(1.25, 2);
  w.ticks_ms(core::from_ms(std::int64_t{7}));
  w.i64(-3);
  w.null();
  w.boolean(true);
  w.end_array();
  EXPECT_EQ(w.take(), "[1.25, 7.000, -3, null, true]");

  io::JsonWriter h;
  h.begin_array();
  h.hex(1e-6);
  h.end_array();
  std::string error;
  const auto parsed = io::parse_json(std::string("{\"l\": \"x\"}"), &error);
  ASSERT_TRUE(parsed.has_value());
  // %a output round-trips bit-exactly through strtod.
  const std::string hex_doc = h.take();
  const double back = std::strtod(hex_doc.c_str() + 1, nullptr);
  EXPECT_EQ(back, 1e-6);
}

TEST(JsonWriter, EscapesControlCharactersAndQuotes) {
  EXPECT_EQ(io::json_escape("a\"b\\c\nd\te\r\x01"),
            "a\\\"b\\\\c\\nd\\te\\r\\u0001");
}

}  // namespace
