// Unit + property tests: backup release postponement (Definitions 2-5).
#include <gtest/gtest.h>

#include "analysis/postponement.hpp"
#include "analysis/promotion.hpp"
#include "analysis/rta.hpp"
#include "core/pattern.hpp"
#include "core/rng.hpp"
#include "workload/scenarios.hpp"
#include "workload/taskset_gen.hpp"

namespace mkss::analysis {
namespace {

using core::Task;
using core::TaskSet;
using core::Ticks;
using core::from_ms;

TEST(Postponement, PaperFigure5Worked) {
  // theta1 = 7 (inspecting point 10: 10 - 3 - 0), theta2 = 4
  // (max{15-(8+3)-0, 7-8-0}).
  const auto result = compute_postponement(workload::paper_fig5_taskset());
  EXPECT_EQ(result.theta(0), from_ms(std::int64_t{7}));
  EXPECT_EQ(result.theta(1), from_ms(std::int64_t{4}));
  EXPECT_TRUE(result.all_exact);
  EXPECT_EQ(result.per_task[0].source, ThetaSource::kExact);
  EXPECT_EQ(result.per_task[1].source, ThetaSource::kExact);
}

TEST(Postponement, DominatesPromotionTimeOnFigure5) {
  // The paper highlights theta2 = 4 >> Y2 = 1.
  const auto ts = workload::paper_fig5_taskset();
  const auto theta = compute_postponement(ts);
  const auto y = promotion_times(ts);
  for (core::TaskIndex i = 0; i < ts.size(); ++i) {
    ASSERT_TRUE(y[i].has_value());
    EXPECT_GE(theta.theta(i), *y[i]);
  }
}

TEST(Postponement, SingleTaskGetsFullSlack) {
  // Alone on the spare, every backup can wait until D - C.
  const TaskSet ts({Task::from_ms(10, 8, 3, 1, 2)});
  const auto result = compute_postponement(ts);
  EXPECT_EQ(result.theta(0), from_ms(std::int64_t{5}));
}

TEST(Postponement, HorizonOverflowFallsBackToPromotion) {
  const auto ts = workload::paper_fig5_taskset();
  PostponementOptions opts;
  opts.horizon_cap = from_ms(std::int64_t{10});  // below the 30ms pattern period
  const auto result = compute_postponement(ts, opts);
  EXPECT_FALSE(result.all_exact);
  EXPECT_EQ(result.per_task[0].source, ThetaSource::kPromotion);
  EXPECT_EQ(result.theta(0), from_ms(std::int64_t{7}));  // Y1 = 7
  EXPECT_EQ(result.theta(1), from_ms(std::int64_t{1}));  // Y2 = 1
}

TEST(Postponement, NoPromotionNoExactMeansZero) {
  // Full set infeasible (no Y) and hyperperiod capped out: theta must be 0.
  const TaskSet ts({Task::from_ms(6, 6, 4, 1, 2), Task::from_ms(9, 9, 4, 1, 2)});
  PostponementOptions opts;
  opts.horizon_cap = 1;  // force overflow
  const auto result = compute_postponement(ts, opts);
  for (const auto& p : result.per_task) {
    if (p.source == ThetaSource::kZero) {
      EXPECT_EQ(p.theta, 0);
    }
  }
  EXPECT_EQ(result.per_task[1].source, ThetaSource::kZero);  // tau2 has no Y
}

TEST(Postponement, ThetaNeverExceedsDeadlineMinusWcet) {
  // A backup postponed past D - C could not finish even alone.
  core::Rng rng(555);
  workload::GenParams params;
  params.min_tasks = 3;
  params.max_tasks = 6;
  for (int trial = 0; trial < 40; ++trial) {
    const auto ts = workload::generate_taskset(params, rng.uniform(0.2, 0.6), rng);
    if (!ts) continue;
    const auto result = compute_postponement(*ts);
    for (core::TaskIndex i = 0; i < ts->size(); ++i) {
      EXPECT_LE(result.theta(i), (*ts)[i].deadline - (*ts)[i].wcet)
          << ts->describe();
    }
  }
}

// Property: for R-pattern-schedulable sets, an exact theta must leave every
// backup job finishable: simulate the spare processor executing ONLY the
// postponed mandatory backups under FP and check deadlines. (This is the
// statement the appendix proof makes for the postponed schedule.)
class PostponementSafety : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PostponementSafety, PostponedBackupScheduleMeetsDeadlines) {
  core::Rng rng(GetParam());
  workload::GenParams params;
  params.min_tasks = 2;
  params.max_tasks = 5;
  params.max_k = 6;           // keep pattern hyperperiods small enough to be exact
  params.min_period_ms = 4;
  params.max_period_ms = 12;
  int tested = 0;
  for (int trial = 0; trial < 300 && tested < 10; ++trial) {
    const auto ts = workload::generate_taskset(params, rng.uniform(0.2, 0.7), rng);
    if (!ts || !schedulable(*ts, DemandModel::kRPatternMandatory)) continue;
    // Keep the quadratic mini-simulator below cheap.
    const auto horizon = ts->mk_hyperperiod(from_ms(std::int64_t{2000}));
    if (!horizon) continue;
    const auto result = compute_postponement(*ts);
    if (!result.all_exact) continue;
    ++tested;

    // Collect postponed mandatory backup jobs over two pattern hyperperiods.
    struct Bjob {
      Ticks eligible, deadline, remaining;
      core::TaskIndex prio;
    };
    std::vector<Bjob> jobs;
    for (core::TaskIndex i = 0; i < ts->size(); ++i) {
      const Task& t = (*ts)[i];
      for (std::uint64_t j = 1; static_cast<Ticks>(j - 1) * t.period < 2 * *horizon;
           ++j) {
        if (!core::r_pattern_mandatory(t.m, t.k, j)) continue;
        const Ticks r = static_cast<Ticks>(j - 1) * t.period;
        jobs.push_back({r + result.theta(i), r + t.deadline, t.wcet, i});
      }
    }
    // Tiny FP simulator over the job list.
    Ticks now = 0;
    while (true) {
      Bjob* best = nullptr;
      Ticks next_eligible = core::kNever;
      for (auto& j : jobs) {
        if (j.remaining == 0) continue;
        if (j.eligible > now) {
          next_eligible = std::min(next_eligible, j.eligible);
          continue;
        }
        if (!best || j.prio < best->prio ||
            (j.prio == best->prio && j.deadline < best->deadline)) {
          best = &j;
        }
      }
      if (!best) {
        if (next_eligible == core::kNever) break;
        now = next_eligible;
        continue;
      }
      // Run until completion or the next eligibility (possible preemption).
      const Ticks run_until = std::min(now + best->remaining,
                                       std::max(next_eligible, now + 1));
      best->remaining -= run_until - now;
      if (best->remaining == 0) {
        EXPECT_LE(run_until, best->deadline)
            << ts->describe() << " backup of tau" << best->prio + 1;
      }
      now = run_until;
    }
  }
  EXPECT_GT(tested, 0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PostponementSafety,
                         ::testing::Values(11u, 22u, 33u, 44u, 55u));

}  // namespace
}  // namespace mkss::analysis
