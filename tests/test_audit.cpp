// Unit tests: the post-hoc trace auditor -- clean traces from the real
// schemes audit clean, and every class of tampering is pinned to the
// invariant key that catches it.
#include <gtest/gtest.h>

#include <algorithm>

#include "audit/trace_auditor.hpp"
#include "fault/campaign.hpp"
#include "sched/factory.hpp"
#include "sim/engine.hpp"
#include "sim/fault_plan.hpp"
#include "workload/scenarios.hpp"

namespace mkss::audit {
namespace {

using core::Ticks;
using core::from_ms;

sim::SimulationTrace run_clean(const core::TaskSet& ts,
                               sched::SchemeKind kind,
                               const sim::FaultPlan& faults,
                               Ticks horizon_ms = 40) {
  const auto scheme = sched::make_scheme(kind);
  sim::SimConfig cfg;
  cfg.horizon = from_ms(horizon_ms);
  return sim::simulate(ts, *scheme, faults, cfg);
}

bool has_violation(const AuditReport& report, const std::string& invariant) {
  return std::any_of(report.violations.begin(), report.violations.end(),
                     [&](const Violation& v) { return v.invariant == invariant; });
}

TEST(Auditor, AllSchemesAuditCleanWithoutFaults) {
  const auto ts = workload::paper_fig1_taskset();
  sim::NoFaultPlan faults;
  for (const auto kind :
       {sched::SchemeKind::kSt, sched::SchemeKind::kDp,
        sched::SchemeKind::kGreedy, sched::SchemeKind::kSelective}) {
    const auto trace = run_clean(ts, kind, faults);
    const AuditReport report = TraceAuditor().audit(trace, ts);
    EXPECT_TRUE(report.ok()) << sched::to_string(kind) << ":\n"
                             << report.to_string();
  }
}

TEST(Auditor, CleanUnderPermanentFault) {
  const auto ts = workload::paper_fig3_taskset();
  fault::ExplicitFaultPlan plan;
  plan.set_permanent({sim::kPrimary, from_ms(std::int64_t{7})});
  for (const auto kind : {sched::SchemeKind::kSt, sched::SchemeKind::kSelective}) {
    const auto trace = run_clean(ts, kind, plan);
    const AuditReport report = TraceAuditor().audit(trace, ts);
    EXPECT_TRUE(report.ok()) << sched::to_string(kind) << ":\n"
                             << report.to_string();
  }
}

TEST(Auditor, CleanUnderTargetedTransient) {
  const auto ts = workload::paper_fig1_taskset();
  fault::ExplicitFaultPlan plan;
  plan.add_transient(core::JobId{0, 1}, 0);  // main of J_{1,1} fails
  const auto trace = run_clean(ts, sched::SchemeKind::kSt, plan);
  EXPECT_EQ(trace.stats.transient_faults, 1u);
  const AuditReport report = TraceAuditor().audit(trace, ts);
  EXPECT_TRUE(report.ok()) << report.to_string();
}

TEST(Auditor, FlagsSegmentBeforeEligibleTime) {
  const auto ts = workload::paper_fig1_taskset();
  sim::NoFaultPlan faults;
  auto trace = run_clean(ts, sched::SchemeKind::kSt, faults);
  // Backdate a backup's eligible time witness: claim it was only eligible
  // *after* its recorded execution.
  bool tampered = false;
  for (auto& c : trace.copies) {
    if (c.kind != sim::CopyKind::kBackup) continue;
    const bool executed = std::any_of(
        trace.segments.begin(), trace.segments.end(), [&](const auto& s) {
          return s.job == c.job && s.kind == c.kind;
        });
    if (!executed) continue;
    c.eligible = c.ended + 1;
    tampered = true;
    break;
  }
  ASSERT_TRUE(tampered) << "expected an executed backup to tamper with";
  EXPECT_TRUE(has_violation(TraceAuditor().audit(trace, ts), "eligible-time"));
}

TEST(Auditor, FlagsOverlappingSegments) {
  const auto ts = workload::paper_fig1_taskset();
  sim::NoFaultPlan faults;
  auto trace = run_clean(ts, sched::SchemeKind::kSt, faults);
  ASSERT_FALSE(trace.segments.empty());
  auto dup = trace.segments.front();
  trace.segments.push_back(dup);  // same span, same processor
  const auto report = TraceAuditor().audit(trace, ts);
  EXPECT_TRUE(has_violation(report, "segment-overlap"));
  EXPECT_TRUE(has_violation(report, "busy-time"));
}

TEST(Auditor, FlagsExecutionAfterProcessorDeath) {
  const auto ts = workload::paper_fig1_taskset();
  sim::NoFaultPlan faults;
  auto trace = run_clean(ts, sched::SchemeKind::kSt, faults);
  // Claim the primary died mid-horizon; its recorded segments now postdate
  // the death.
  trace.death_time[sim::kPrimary] = from_ms(std::int64_t{1});
  const auto report = TraceAuditor().audit(trace, ts);
  EXPECT_TRUE(has_violation(report, "dead-processor"));
}

TEST(Auditor, FlagsCopyOverrun) {
  const auto ts = workload::paper_fig1_taskset();
  sim::NoFaultPlan faults;
  auto trace = run_clean(ts, sched::SchemeKind::kSt, faults);
  bool tampered = false;
  for (auto& c : trace.copies) {
    if (c.end == sim::CopyEnd::kCompleted) {
      c.work -= 1;  // claims less demand than it executed
      tampered = true;
      break;
    }
  }
  ASSERT_TRUE(tampered);
  EXPECT_TRUE(has_violation(TraceAuditor().audit(trace, ts), "copy-overrun"));
}

TEST(Auditor, FlagsCancellationWithoutSiblingSuccess) {
  const auto ts = workload::paper_fig1_taskset();
  sim::NoFaultPlan faults;
  auto trace = run_clean(ts, sched::SchemeKind::kSt, faults);
  bool tampered = false;
  for (auto& c : trace.copies) {
    if (c.end == sim::CopyEnd::kCanceled) {
      c.ended += 1;  // cancellation no longer coincides with the success
      tampered = true;
      break;
    }
  }
  ASSERT_TRUE(tampered) << "expected a canceled backup in the ST trace";
  EXPECT_TRUE(has_violation(TraceAuditor().audit(trace, ts), "cancel-protocol"));
}

TEST(Auditor, FlagsUnexplainedMandatoryMiss) {
  const auto ts = workload::paper_fig1_taskset();
  sim::NoFaultPlan faults;
  auto trace = run_clean(ts, sched::SchemeKind::kSt, faults);
  bool tampered = false;
  for (auto& j : trace.jobs) {
    if (!j.mandatory || !j.counted || !j.resolved) continue;
    j.outcome = core::JobOutcome::kMissed;
    tampered = true;
    break;
  }
  ASSERT_TRUE(tampered);
  const auto report = TraceAuditor().audit(trace, ts);
  EXPECT_TRUE(has_violation(report, "mandatory-miss"));
  EXPECT_TRUE(has_violation(report, "stats-reconcile"));
}

TEST(Auditor, FlagsMkWindowViolation) {
  const auto ts = workload::paper_fig1_taskset();  // tau1 has (m,k) = (2,4)
  sim::NoFaultPlan faults;
  auto trace = run_clean(ts, sched::SchemeKind::kSt, faults);
  ASSERT_GE(trace.outcomes_per_task[0].size(), 4u);
  std::fill(trace.outcomes_per_task[0].begin(),
            trace.outcomes_per_task[0].end(), core::JobOutcome::kMissed);
  const auto report = TraceAuditor().audit(trace, ts);
  EXPECT_TRUE(has_violation(report, "mk-violation"));
}

TEST(Auditor, FlagsEnergyMismatch) {
  const auto ts = workload::paper_fig1_taskset();
  sim::NoFaultPlan faults;
  auto trace = run_clean(ts, sched::SchemeKind::kSt, faults);
  trace.busy_time[sim::kPrimary] += 5;  // books time no segment backs
  const auto report = TraceAuditor().audit(trace, ts);
  EXPECT_TRUE(has_violation(report, "busy-time"));
}

TEST(Auditor, MaxViolationsTruncatesReport) {
  const auto ts = workload::paper_fig1_taskset();
  sim::NoFaultPlan faults;
  auto trace = run_clean(ts, sched::SchemeKind::kSt, faults);
  for (auto& s : trace.segments) s.span.begin = s.span.end + 1;  // all invalid
  AuditOptions options;
  options.max_violations = 2;
  const auto report = TraceAuditor(options).audit(trace, ts);
  EXPECT_EQ(report.violations.size(), 2u);
  EXPECT_TRUE(report.truncated);
}

TEST(Auditor, AuditOrThrowCarriesReport) {
  const auto ts = workload::paper_fig1_taskset();
  sim::NoFaultPlan faults;
  auto trace = run_clean(ts, sched::SchemeKind::kSt, faults);
  EXPECT_NO_THROW(audit_or_throw(trace, ts));
  trace.busy_time[sim::kSpare] += 1;
  try {
    audit_or_throw(trace, ts);
    FAIL() << "expected AuditViolationError";
  } catch (const AuditViolationError& e) {
    EXPECT_FALSE(e.report().ok());
    EXPECT_NE(std::string(e.what()).find("busy-time"), std::string::npos);
  }
}

}  // namespace
}  // namespace mkss::audit
