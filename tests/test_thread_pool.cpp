// Unit tests: the fixed-size thread pool behind the parallel sweep harness
// (submission, result/exception propagation, shutdown draining) and the
// parallel_for barrier helper.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "core/rng.hpp"
#include "core/thread_pool.hpp"

namespace mkss::core {
namespace {

TEST(ThreadPool, ResolvesZeroToHardwareConcurrency) {
  const std::size_t resolved = ThreadPool::resolve_num_threads(0);
  EXPECT_GE(resolved, 1u);
  EXPECT_EQ(ThreadPool::resolve_num_threads(3), 3u);
}

TEST(ThreadPool, RunsSubmittedJobsAndReturnsResults) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4u);
  std::vector<std::future<int>> futures;
  for (int i = 0; i < 100; ++i) {
    futures.push_back(pool.submit([i] { return i * i; }));
  }
  int sum = 0;
  for (auto& f : futures) sum += f.get();
  int expected = 0;
  for (int i = 0; i < 100; ++i) expected += i * i;
  EXPECT_EQ(sum, expected);
}

TEST(ThreadPool, PropagatesExceptionsThroughFutures) {
  ThreadPool pool(2);
  auto ok = pool.submit([] { return 7; });
  auto bad = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_EQ(ok.get(), 7);
  EXPECT_THROW(bad.get(), std::runtime_error);
  // The worker that ran the throwing job must survive to run more jobs.
  EXPECT_EQ(pool.submit([] { return 1; }).get(), 1);
}

TEST(ThreadPool, DestructorDrainsQueuedJobs) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 64; ++i) {
      pool.submit([&ran] {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        ++ran;
      });
    }
  }  // destructor joins only after the queue is drained
  EXPECT_EQ(ran.load(), 64);
}

TEST(ThreadPool, ManyProducersOneQueue) {
  ThreadPool pool(3);
  std::atomic<int> ran{0};
  std::vector<std::thread> producers;
  for (int p = 0; p < 4; ++p) {
    producers.emplace_back([&pool, &ran] {
      std::vector<std::future<void>> futures;
      for (int i = 0; i < 50; ++i) {
        futures.push_back(pool.submit([&ran] { ++ran; }));
      }
      wait_all(futures);
    });
  }
  for (auto& t : producers) t.join();
  EXPECT_EQ(ran.load(), 200);
}

TEST(ParallelFor, VisitsEveryIndexExactlyOnce) {
  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    std::vector<int> hits(257, 0);
    parallel_for(threads, hits.size(), [&](std::size_t i) { ++hits[i]; });
    EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), 257)
        << "threads=" << threads;
    for (const int h : hits) EXPECT_EQ(h, 1);
  }
}

TEST(ParallelFor, ZeroCountIsANoOp) {
  parallel_for(std::size_t{4}, 0, [](std::size_t) { FAIL(); });
}

TEST(StreamSeed, DependsOnEveryInputAndIsOrderSensitive) {
  const auto s = stream_seed(1, 2, 3);
  EXPECT_EQ(s, stream_seed(1, 2, 3));  // pure function
  EXPECT_NE(s, stream_seed(2, 2, 3));
  EXPECT_NE(s, stream_seed(1, 3, 3));
  EXPECT_NE(s, stream_seed(1, 2, 4));
  EXPECT_NE(s, stream_seed(1, 3, 2));  // (a, b) is an ordered pair
}

TEST(StreamSeed, NamedStreamsAreIndependentOfConsumption) {
  // Consuming arbitrarily much of one stream must not shift its siblings --
  // the property the parallel harness relies on (unlike Rng::split()).
  Rng a(stream_seed(42, 0, 0));
  for (int i = 0; i < 1000; ++i) (void)a();
  Rng b(stream_seed(42, 0, 1));
  Rng b_again(stream_seed(42, 0, 1));
  for (int i = 0; i < 16; ++i) EXPECT_EQ(b(), b_again());
}

}  // namespace
}  // namespace mkss::core
