// Unit + integration tests: the evaluation harness (run_one, horizon choice,
// small sweeps).
#include <gtest/gtest.h>

#include "harness/evaluation.hpp"
#include "workload/scenarios.hpp"

namespace mkss::harness {
namespace {

TEST(RunOne, ProducesConsistentEnergyAndQos) {
  const auto ts = workload::paper_fig1_taskset();
  sim::NoFaultPlan nofault;
  sim::SimConfig cfg;
  cfg.horizon = core::from_ms(std::int64_t{20});
  const auto run = run_one(ts, sched::SchemeKind::kDp, nofault, cfg);
  EXPECT_DOUBLE_EQ(run.energy.active_total(), 15.0);
  EXPECT_TRUE(run.qos.theorem1_holds());
  EXPECT_EQ(run.trace.horizon, cfg.horizon);
}

TEST(RunOne, ActiveEnergyEqualsBusyTime) {
  const auto ts = workload::paper_fig1_taskset();
  sim::NoFaultPlan nofault;
  sim::SimConfig cfg;
  cfg.horizon = core::from_ms(std::int64_t{20});
  for (const auto kind : {sched::SchemeKind::kSt, sched::SchemeKind::kDp,
                          sched::SchemeKind::kGreedy, sched::SchemeKind::kSelective}) {
    const auto run = run_one(ts, kind, nofault, cfg);
    const double busy_ms = core::to_ms(run.trace.busy_time[sim::kPrimary] +
                                       run.trace.busy_time[sim::kSpare]);
    EXPECT_DOUBLE_EQ(run.energy.active_total(), busy_ms) << sched::to_string(kind);
  }
}

TEST(ChooseHorizon, UsesPatternHyperperiodWhenSmall) {
  const auto ts = workload::paper_fig1_taskset();  // mk hyperperiod 20ms
  EXPECT_EQ(choose_horizon(ts, core::from_ms(std::int64_t{1000})),
            core::from_ms(std::int64_t{20}));
}

TEST(ChooseHorizon, FallsBackToCap) {
  const auto ts = workload::paper_fig1_taskset();
  EXPECT_EQ(choose_horizon(ts, core::from_ms(std::int64_t{15})),
            core::from_ms(std::int64_t{15}));
}

TEST(Sweep, SmallNoFaultSweepHasPaperShape) {
  SweepConfig cfg;
  cfg.bin_starts = {0.2, 0.4};
  cfg.sets_per_bin = 6;
  cfg.max_attempts_per_bin = 3000;
  cfg.horizon_cap = core::from_ms(std::int64_t{2000});
  const auto result = run_sweep(cfg);

  ASSERT_EQ(result.scheme_names.size(), 3u);
  EXPECT_EQ(result.scheme_names[0], "MKSS_ST");
  EXPECT_EQ(result.qos_failures, 0u);
  ASSERT_EQ(result.bins.size(), 2u);
  for (const auto& bin : result.bins) {
    if (bin.sets == 0) continue;
    const double st = bin.normalized[0].mean();
    const double dp = bin.normalized[1].mean();
    const double sel = bin.normalized[2].mean();
    EXPECT_DOUBLE_EQ(st, 1.0);
    EXPECT_LT(dp, st);
    EXPECT_LT(sel, dp);  // the headline ordering of Figure 6
  }
  EXPECT_GT(result.max_gain(2, 1), 0.0);
}

TEST(Sweep, TableHasOneRowPerBin) {
  SweepConfig cfg;
  cfg.bin_starts = {0.3};
  cfg.sets_per_bin = 3;
  cfg.max_attempts_per_bin = 2000;
  cfg.horizon_cap = core::from_ms(std::int64_t{1000});
  const auto result = run_sweep(cfg);
  const auto table = result.to_table();
  EXPECT_EQ(table.rows(), 1u);
  EXPECT_NE(table.to_string().find("MKSS_selective"), std::string::npos);
}

TEST(Sweep, DeterministicForFixedSeed) {
  SweepConfig cfg;
  cfg.bin_starts = {0.3};
  cfg.sets_per_bin = 4;
  cfg.max_attempts_per_bin = 2000;
  cfg.horizon_cap = core::from_ms(std::int64_t{1000});
  const auto a = run_sweep(cfg);
  const auto b = run_sweep(cfg);
  ASSERT_EQ(a.bins.size(), b.bins.size());
  for (std::size_t i = 0; i < a.bins.size(); ++i) {
    EXPECT_EQ(a.bins[i].sets, b.bins[i].sets);
    for (std::size_t s = 0; s < a.scheme_names.size(); ++s) {
      EXPECT_DOUBLE_EQ(a.bins[i].normalized[s].mean(), b.bins[i].normalized[s].mean());
    }
  }
}

TEST(Sweep, BitIdenticalAcrossThreadCounts) {
  // The determinism contract of the parallel harness: every random stream
  // is named by (seed, bin_index, set_index), and aggregation happens in
  // set-index order after a barrier -- so any thread count must reproduce
  // the serial result bit-for-bit, attempts and all.
  SweepConfig cfg;
  cfg.bin_starts = {0.2, 0.4};
  cfg.sets_per_bin = 5;
  cfg.max_attempts_per_bin = 3000;
  cfg.horizon_cap = core::from_ms(std::int64_t{1000});
  cfg.scenario = fault::Scenario::kPermanentAndTransient;
  cfg.lambda_per_ms = 1e-4;  // 100x the paper's rate: the transient stream
                             // matters, but backups stay effectively safe

  cfg.num_threads = 1;
  const auto serial = run_sweep(cfg);
  EXPECT_EQ(serial.qos_failures, 0u);

  for (const std::size_t threads : {std::size_t{2}, std::size_t{4}}) {
    cfg.num_threads = threads;
    const auto parallel = run_sweep(cfg);
    EXPECT_EQ(parallel.qos_failures, 0u);
    ASSERT_EQ(parallel.bins.size(), serial.bins.size()) << threads;
    for (std::size_t b = 0; b < serial.bins.size(); ++b) {
      const auto& sb = serial.bins[b];
      const auto& pb = parallel.bins[b];
      EXPECT_EQ(pb.sets, sb.sets) << threads;
      EXPECT_EQ(pb.attempts, sb.attempts) << threads;
      ASSERT_EQ(pb.normalized.size(), sb.normalized.size());
      for (std::size_t s = 0; s < sb.normalized.size(); ++s) {
        // Bit-identical, not just close: same streams, same fp order.
        EXPECT_EQ(pb.normalized[s].mean(), sb.normalized[s].mean());
        EXPECT_EQ(pb.normalized[s].stddev(), sb.normalized[s].stddev());
        EXPECT_EQ(pb.normalized[s].min(), sb.normalized[s].min());
        EXPECT_EQ(pb.normalized[s].max(), sb.normalized[s].max());
        EXPECT_EQ(pb.absolute[s].mean(), sb.absolute[s].mean());
      }
    }
    EXPECT_EQ(parallel.to_table().to_csv(), serial.to_table().to_csv());
  }
}

TEST(Sweep, TableRecordsGenerationAttempts) {
  SweepConfig cfg;
  cfg.bin_starts = {0.3};
  cfg.sets_per_bin = 3;
  cfg.max_attempts_per_bin = 2000;
  cfg.horizon_cap = core::from_ms(std::int64_t{1000});
  const auto result = run_sweep(cfg);
  ASSERT_EQ(result.bins.size(), 1u);
  EXPECT_GE(result.bins[0].attempts, result.bins[0].sets);
  const auto csv = result.to_table().to_csv();
  EXPECT_NE(csv.find("attempts"), std::string::npos);
  EXPECT_NE(csv.find(std::to_string(result.bins[0].attempts)),
            std::string::npos);
}

TEST(Sweep, PermanentFaultScenarioStillSatisfiesTheorem1) {
  SweepConfig cfg;
  cfg.bin_starts = {0.3};
  cfg.sets_per_bin = 5;
  cfg.max_attempts_per_bin = 3000;
  cfg.horizon_cap = core::from_ms(std::int64_t{1000});
  cfg.scenario = fault::Scenario::kPermanentOnly;
  const auto result = run_sweep(cfg);
  EXPECT_EQ(result.qos_failures, 0u);
}

}  // namespace
}  // namespace mkss::harness
