// Unit + integration tests: the evaluation harness (run_one, horizon choice,
// small sweeps, error quarantine).
#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <memory>
#include <stdexcept>

#include "harness/evaluation.hpp"
#include "io/taskset_io.hpp"
#include "workload/scenarios.hpp"

namespace mkss::harness {
namespace {

TEST(RunOne, ProducesConsistentEnergyAndQos) {
  const auto ts = workload::paper_fig1_taskset();
  sim::SimConfig cfg;
  cfg.horizon = core::from_ms(std::int64_t{20});
  const auto run = run_one({.ts = ts, .kind = sched::SchemeKind::kDp, .sim = cfg});
  EXPECT_DOUBLE_EQ(run.energy.active_total(), 15.0);
  EXPECT_TRUE(run.qos.theorem1_holds());
  EXPECT_EQ(run.trace.horizon, cfg.horizon);
}

TEST(RunOne, ActiveEnergyEqualsBusyTime) {
  const auto ts = workload::paper_fig1_taskset();
  sim::SimConfig cfg;
  cfg.horizon = core::from_ms(std::int64_t{20});
  for (const auto kind : {sched::SchemeKind::kSt, sched::SchemeKind::kDp,
                          sched::SchemeKind::kGreedy, sched::SchemeKind::kSelective}) {
    const auto run = run_one({.ts = ts, .kind = kind, .sim = cfg});
    const double busy_ms = core::to_ms(run.trace.busy_time[sim::kPrimary] +
                                       run.trace.busy_time[sim::kSpare]);
    EXPECT_DOUBLE_EQ(run.energy.active_total(), busy_ms) << sched::to_string(kind);
  }
}

TEST(ChooseHorizon, UsesPatternHyperperiodWhenSmall) {
  const auto ts = workload::paper_fig1_taskset();  // mk hyperperiod 20ms
  EXPECT_EQ(choose_horizon(ts, core::from_ms(std::int64_t{1000})),
            core::from_ms(std::int64_t{20}));
}

TEST(ChooseHorizon, FallsBackToCap) {
  const auto ts = workload::paper_fig1_taskset();
  EXPECT_EQ(choose_horizon(ts, core::from_ms(std::int64_t{15})),
            core::from_ms(std::int64_t{15}));
}

TEST(Sweep, SmallNoFaultSweepHasPaperShape) {
  SweepConfig cfg;
  cfg.bin_starts = {0.2, 0.4};
  cfg.sets_per_bin = 6;
  cfg.max_attempts_per_bin = 3000;
  cfg.horizon_cap = core::from_ms(std::int64_t{2000});
  const auto result = run_sweep(cfg);

  ASSERT_EQ(result.scheme_names.size(), 3u);
  EXPECT_EQ(result.scheme_names[0], "MKSS_ST");
  EXPECT_EQ(result.qos_failures, 0u);
  ASSERT_EQ(result.bins.size(), 2u);
  for (const auto& bin : result.bins) {
    if (bin.sets == 0) continue;
    const double st = bin.normalized[0].mean();
    const double dp = bin.normalized[1].mean();
    const double sel = bin.normalized[2].mean();
    EXPECT_DOUBLE_EQ(st, 1.0);
    EXPECT_LT(dp, st);
    EXPECT_LT(sel, dp);  // the headline ordering of Figure 6
  }
  EXPECT_GT(result.max_gain(2, 1), 0.0);
}

TEST(Sweep, TableHasOneRowPerBin) {
  SweepConfig cfg;
  cfg.bin_starts = {0.3};
  cfg.sets_per_bin = 3;
  cfg.max_attempts_per_bin = 2000;
  cfg.horizon_cap = core::from_ms(std::int64_t{1000});
  const auto result = run_sweep(cfg);
  const auto table = result.to_table();
  EXPECT_EQ(table.rows(), 1u);
  EXPECT_NE(table.to_string().find("MKSS_selective"), std::string::npos);
}

TEST(Sweep, DeterministicForFixedSeed) {
  SweepConfig cfg;
  cfg.bin_starts = {0.3};
  cfg.sets_per_bin = 4;
  cfg.max_attempts_per_bin = 2000;
  cfg.horizon_cap = core::from_ms(std::int64_t{1000});
  const auto a = run_sweep(cfg);
  const auto b = run_sweep(cfg);
  ASSERT_EQ(a.bins.size(), b.bins.size());
  for (std::size_t i = 0; i < a.bins.size(); ++i) {
    EXPECT_EQ(a.bins[i].sets, b.bins[i].sets);
    for (std::size_t s = 0; s < a.scheme_names.size(); ++s) {
      EXPECT_DOUBLE_EQ(a.bins[i].normalized[s].mean(), b.bins[i].normalized[s].mean());
    }
  }
}

TEST(Sweep, BitIdenticalAcrossThreadCounts) {
  // The determinism contract of the parallel harness: every random stream
  // is named by (seed, bin_index, set_index), and aggregation happens in
  // set-index order after a barrier -- so any thread count must reproduce
  // the serial result bit-for-bit, attempts and all.
  SweepConfig cfg;
  cfg.bin_starts = {0.2, 0.4};
  cfg.sets_per_bin = 5;
  cfg.max_attempts_per_bin = 3000;
  cfg.horizon_cap = core::from_ms(std::int64_t{1000});
  cfg.scenario = fault::Scenario::kPermanentAndTransient;
  cfg.lambda_per_ms = 1e-4;  // 100x the paper's rate: the transient stream
                             // matters, but backups stay effectively safe

  cfg.num_threads = 1;
  const auto serial = run_sweep(cfg);
  EXPECT_EQ(serial.qos_failures, 0u);

  for (const std::size_t threads : {std::size_t{2}, std::size_t{4}}) {
    cfg.num_threads = threads;
    const auto parallel = run_sweep(cfg);
    EXPECT_EQ(parallel.qos_failures, 0u);
    ASSERT_EQ(parallel.bins.size(), serial.bins.size()) << threads;
    for (std::size_t b = 0; b < serial.bins.size(); ++b) {
      const auto& sb = serial.bins[b];
      const auto& pb = parallel.bins[b];
      EXPECT_EQ(pb.sets, sb.sets) << threads;
      EXPECT_EQ(pb.attempts, sb.attempts) << threads;
      EXPECT_EQ(pb.gen_counters, sb.gen_counters) << threads;
      ASSERT_EQ(pb.normalized.size(), sb.normalized.size());
      for (std::size_t s = 0; s < sb.normalized.size(); ++s) {
        // Bit-identical, not just close: same streams, same fp order.
        EXPECT_EQ(pb.normalized[s].mean(), sb.normalized[s].mean());
        EXPECT_EQ(pb.normalized[s].stddev(), sb.normalized[s].stddev());
        EXPECT_EQ(pb.normalized[s].min(), sb.normalized[s].min());
        EXPECT_EQ(pb.normalized[s].max(), sb.normalized[s].max());
        EXPECT_EQ(pb.absolute[s].mean(), sb.absolute[s].mean());
      }
    }
    EXPECT_EQ(parallel.to_table().to_csv(), serial.to_table().to_csv());
  }
}

TEST(Sweep, TableRecordsGenerationAttempts) {
  SweepConfig cfg;
  cfg.bin_starts = {0.3};
  cfg.sets_per_bin = 3;
  cfg.max_attempts_per_bin = 2000;
  cfg.horizon_cap = core::from_ms(std::int64_t{1000});
  const auto result = run_sweep(cfg);
  ASSERT_EQ(result.bins.size(), 1u);
  EXPECT_GE(result.bins[0].attempts, result.bins[0].sets);
  const auto csv = result.to_table().to_csv();
  EXPECT_NE(csv.find("attempts"), std::string::npos);
  EXPECT_NE(csv.find(std::to_string(result.bins[0].attempts)),
            std::string::npos);
}

TEST(Sweep, SurfacesGenerationStageCounters) {
  SweepConfig cfg;
  cfg.bin_starts = {0.2, 0.4};
  cfg.sets_per_bin = 4;
  cfg.max_attempts_per_bin = 3000;
  cfg.horizon_cap = core::from_ms(std::int64_t{1000});
  const auto result = run_sweep(cfg);
  ASSERT_EQ(result.bins.size(), 2u);
  for (const auto& bin : result.bins) {
    const workload::GenCounters& c = bin.gen_counters;
    // Every attempt exits through exactly one stage.
    EXPECT_EQ(c.draw_failures + c.out_of_bin + c.filter_rejects +
                  c.rta_rejects + c.accepted,
              bin.attempts);
    EXPECT_EQ(c.accepted, bin.sets);
  }
  const auto totals = result.generation_totals();
  EXPECT_EQ(totals.accepted, result.bins[0].sets + result.bins[1].sets);
  EXPECT_NE(result.to_table().to_csv().find("rejects draw/bin/filter/rta"),
            std::string::npos);
}

TEST(Sweep, PermanentFaultScenarioStillSatisfiesTheorem1) {
  SweepConfig cfg;
  cfg.bin_starts = {0.3};
  cfg.sets_per_bin = 5;
  cfg.max_attempts_per_bin = 3000;
  cfg.horizon_cap = core::from_ms(std::int64_t{1000});
  cfg.scenario = fault::Scenario::kPermanentOnly;
  const auto result = run_sweep(cfg);
  EXPECT_EQ(result.qos_failures, 0u);
}

/// Variant that always throws during setup: the deterministic way to exercise
/// the sweep's error quarantine without depending on a real scheme bug.
class ThrowingScheme final : public sim::Scheme {
 public:
  std::string name() const override { return "boom"; }
  void setup(const core::TaskSet&) override {
    throw std::runtime_error("boom: scripted scheme failure");
  }
  sim::ReleaseDecision on_release(core::TaskIndex, std::uint64_t,
                                  core::Ticks) override {
    return sim::ReleaseDecision::skip();
  }
  void on_outcome(core::TaskIndex, std::uint64_t, core::JobOutcome) override {}
  void on_permanent_fault(sim::ProcessorId, core::Ticks) override {}
  std::optional<sim::CopySpec> reroute_on_death(const core::Job&, bool,
                                                sim::ProcessorId, core::Ticks,
                                                core::Ticks) override {
    return std::nullopt;
  }
};

/// MKSS_ST with every backup silently dropped and no re-routing: fine under
/// no faults, but any fault on a mandatory main becomes an unexplained miss
/// the attached auditor must quarantine.
class NoBackupScheme final : public sim::Scheme {
 public:
  std::string name() const override { return "st-no-backup"; }
  void setup(const core::TaskSet& ts) override { inner_->setup(ts); }
  sim::ReleaseDecision on_release(core::TaskIndex i, std::uint64_t j,
                                  core::Ticks release) override {
    sim::ReleaseDecision d = inner_->on_release(i, j, release);
    d.copies.erase_if([](const sim::CopySpec& c) {
      return c.kind == sim::CopyKind::kBackup;
    });
    return d;
  }
  void on_outcome(core::TaskIndex i, std::uint64_t j,
                  core::JobOutcome o) override {
    inner_->on_outcome(i, j, o);
  }
  void on_permanent_fault(sim::ProcessorId dead, core::Ticks now) override {
    inner_->on_permanent_fault(dead, now);
  }
  std::optional<sim::CopySpec> reroute_on_death(const core::Job&, bool,
                                                sim::ProcessorId, core::Ticks,
                                                core::Ticks) override {
    return std::nullopt;
  }

 private:
  std::unique_ptr<sim::Scheme> inner_ =
      sched::make_scheme(sched::SchemeKind::kSt);
};

std::vector<SchemeVariant> reference_plus_boom() {
  return {{"MKSS_ST", [] { return sched::make_scheme(sched::SchemeKind::kSt); }},
          {"boom", [] { return std::make_unique<ThrowingScheme>(); }}};
}

TEST(Sweep, QuarantinesThrowingVariantWithoutAborting) {
  SweepConfig cfg;
  cfg.bin_starts = {0.3};
  cfg.sets_per_bin = 3;
  cfg.max_attempts_per_bin = 2000;
  cfg.horizon_cap = core::from_ms(std::int64_t{1000});
  const auto result = run_variant_sweep(cfg, reference_plus_boom());

  ASSERT_FALSE(result.errors.empty());
  for (std::size_t i = 0; i < result.errors.size(); ++i) {
    const SweepError& e = result.errors[i];
    EXPECT_EQ(e.variant, "boom");
    EXPECT_EQ(e.bin, 0u);
    EXPECT_EQ(e.set, i);  // quarantine order is (bin, set, variant) order
    EXPECT_EQ(e.seed, core::stream_seed(cfg.seed, 0, i));
    EXPECT_NE(e.message.find("boom"), std::string::npos);
    EXPECT_NO_THROW(io::parse_taskset_string(e.taskset));
  }
  // Every set has an errored variant, so the bin keeps no statistics.
  ASSERT_EQ(result.bins.size(), 1u);
  EXPECT_EQ(result.bins[0].sets, 0u);
}

TEST(Sweep, ErrorDirReceivesParseableReproBundles) {
  namespace fs = std::filesystem;
  const fs::path dir = fs::temp_directory_path() /
                       ("mkss_sweep_errors_" + std::to_string(::getpid()));
  fs::remove_all(dir);
  SweepConfig cfg;
  cfg.bin_starts = {0.3};
  cfg.sets_per_bin = 2;
  cfg.max_attempts_per_bin = 2000;
  cfg.horizon_cap = core::from_ms(std::int64_t{1000});
  cfg.error_dir = dir.string();
  const auto result = run_variant_sweep(cfg, reference_plus_boom());

  ASSERT_FALSE(result.errors.empty());
  for (const SweepError& e : result.errors) {
    const fs::path bundle = dir / ("bin" + std::to_string(e.bin) + "_set" +
                                   std::to_string(e.set) + "_" + e.variant +
                                   ".repro.txt");
    ASSERT_TRUE(fs::exists(bundle)) << bundle;
    // The bundle parses as a task-set file and names the quarantined set.
    const core::TaskSet repro = io::parse_taskset_file(bundle.string());
    EXPECT_EQ(io::serialize_taskset(repro), e.taskset);
  }
  fs::remove_all(dir);
}

TEST(Sweep, CorpusRoundTripsBitIdentically) {
  // First sweep generates and saves the corpus; the second loads it. Both
  // must agree to the last bit -- the serializer is tick-exact, so a loaded
  // set is the generated set.
  namespace fs = std::filesystem;
  const fs::path dir = fs::temp_directory_path() /
                       ("mkss_corpus_" + std::to_string(::getpid()));
  fs::remove_all(dir);
  SweepConfig cfg;
  cfg.bin_starts = {0.2, 0.4};
  cfg.sets_per_bin = 4;
  cfg.max_attempts_per_bin = 3000;
  cfg.horizon_cap = core::from_ms(std::int64_t{1000});
  cfg.corpus_dir = dir.string();

  const auto saved = run_sweep(cfg);
  ASSERT_TRUE(fs::exists(dir / "manifest.txt"));
  const auto loaded = run_sweep(cfg);

  ASSERT_EQ(loaded.bins.size(), saved.bins.size());
  for (std::size_t b = 0; b < saved.bins.size(); ++b) {
    EXPECT_EQ(loaded.bins[b].sets, saved.bins[b].sets);
    EXPECT_EQ(loaded.bins[b].attempts, saved.bins[b].attempts);
    for (std::size_t s = 0; s < saved.bins[b].normalized.size(); ++s) {
      EXPECT_EQ(loaded.bins[b].normalized[s].mean(),
                saved.bins[b].normalized[s].mean());
      EXPECT_EQ(loaded.bins[b].normalized[s].stddev(),
                saved.bins[b].normalized[s].stddev());
      EXPECT_EQ(loaded.bins[b].absolute[s].mean(),
                saved.bins[b].absolute[s].mean());
    }
  }
  EXPECT_EQ(loaded.to_table().to_csv(), saved.to_table().to_csv());
  fs::remove_all(dir);
}

TEST(Sweep, CorpusRejectsStaleKeyLoudly) {
  // A corpus written under different generation parameters must abort the
  // sweep, never silently benchmark the wrong workload.
  namespace fs = std::filesystem;
  const fs::path dir = fs::temp_directory_path() /
                       ("mkss_corpus_stale_" + std::to_string(::getpid()));
  fs::remove_all(dir);
  SweepConfig cfg;
  cfg.bin_starts = {0.3};
  cfg.sets_per_bin = 2;
  cfg.max_attempts_per_bin = 2000;
  cfg.horizon_cap = core::from_ms(std::int64_t{1000});
  cfg.corpus_dir = dir.string();
  run_sweep(cfg);

  SweepConfig stale = cfg;
  stale.seed += 1;
  EXPECT_THROW(run_sweep(stale), std::runtime_error);
  stale = cfg;
  stale.gen.max_k += 1;
  EXPECT_THROW(run_sweep(stale), std::runtime_error);
  // Scenario and power are not generation inputs: changing them reuses the
  // corpus (this is what lets fig6a/b/c share one directory).
  SweepConfig shared = cfg;
  shared.scenario = fault::Scenario::kPermanentOnly;
  EXPECT_NO_THROW(run_sweep(shared));
  fs::remove_all(dir);
}

TEST(Sweep, QuarantineIsBitIdenticalAcrossThreadCounts) {
  // Errors live in the same disjoint per-(set, variant) slots as the
  // statistics and are collected in index order, so the quarantine report
  // must be byte-identical for every thread count.
  SweepConfig cfg;
  cfg.bin_starts = {0.2, 0.4};
  cfg.sets_per_bin = 4;
  cfg.max_attempts_per_bin = 3000;
  cfg.horizon_cap = core::from_ms(std::int64_t{1000});

  cfg.num_threads = 1;
  const auto serial = run_variant_sweep(cfg, reference_plus_boom());
  ASSERT_FALSE(serial.errors.empty());

  cfg.num_threads = 4;
  const auto parallel = run_variant_sweep(cfg, reference_plus_boom());
  ASSERT_EQ(parallel.errors.size(), serial.errors.size());
  for (std::size_t i = 0; i < serial.errors.size(); ++i) {
    EXPECT_EQ(parallel.errors[i].bin, serial.errors[i].bin);
    EXPECT_EQ(parallel.errors[i].set, serial.errors[i].set);
    EXPECT_EQ(parallel.errors[i].variant, serial.errors[i].variant);
    EXPECT_EQ(parallel.errors[i].seed, serial.errors[i].seed);
    EXPECT_EQ(parallel.errors[i].message, serial.errors[i].message);
    EXPECT_EQ(parallel.errors[i].taskset, serial.errors[i].taskset);
  }
  EXPECT_EQ(parallel.to_table().to_csv(), serial.to_table().to_csv());
}

TEST(Sweep, AuditQuarantinesSchemeThatDropsBackups) {
  // End to end: the broken variant sails through generation and simulation,
  // and only the attached auditor catches it -- as an unexplained mandatory
  // miss once faults strike -- without disturbing the reference scheme.
  SweepConfig cfg;
  cfg.bin_starts = {0.3};
  cfg.sets_per_bin = 4;
  cfg.max_attempts_per_bin = 3000;
  cfg.horizon_cap = core::from_ms(std::int64_t{1000});
  cfg.scenario = fault::Scenario::kPermanentAndTransient;
  cfg.lambda_per_ms = 0.05;  // aggressive: mains do draw transients
  const std::vector<SchemeVariant> variants{
      {"MKSS_ST", [] { return sched::make_scheme(sched::SchemeKind::kSt); }},
      {"st-no-backup", [] { return std::make_unique<NoBackupScheme>(); }}};
  const auto result = run_variant_sweep(cfg, variants);

  ASSERT_FALSE(result.errors.empty());
  bool saw_mandatory_miss = false;
  for (const SweepError& e : result.errors) {
    EXPECT_EQ(e.variant, "st-no-backup");  // the real scheme stays clean
    saw_mandatory_miss |=
        e.message.find("mandatory-miss") != std::string::npos;
  }
  EXPECT_TRUE(saw_mandatory_miss);
}

}  // namespace
}  // namespace mkss::harness
