// Reproduction tests for the paper's worked examples (Figures 1-5).
//
// These pin the exact numbers the paper reports:
//   Fig 1: preference-oriented dual-priority (MKSS_DP) on
//          tau1=(5,4,3,2,4), tau2=(10,10,3,1,2): 15 active units in [0,20].
//   Fig 2: dynamic-pattern execution of the optional jobs on the same set:
//          12 units (the paper's hand-drawn schedule matches the
//          urgency-limited greedy variant, FD <= 1).
//   Fig 3: greedy on tau1=(5,2.5,2,2,4), tau2=(4,4,2,2,4): the paper draws
//          20 units; our faithful "execute every optional job" greedy yields
//          23 (it also runs tau1's feasible fifth job and the tail job
//          released at t=24) -- the qualitative claim (greedy far above
//          selective) is what matters and is asserted.
//   Fig 4: MKSS_selective on the same set: 14 units before t=25.
//   Fig 5: postponement intervals theta1=7, theta2=4 (see
//          test_postponement.cpp).
#include <gtest/gtest.h>

#include "energy/energy_model.hpp"
#include "harness/evaluation.hpp"
#include "sched/factory.hpp"
#include "sim/engine.hpp"
#include "workload/scenarios.hpp"

namespace mkss {
namespace {

using core::from_ms;

double active_units(const core::TaskSet& ts, sim::Scheme& scheme, double horizon_ms) {
  sim::SimConfig cfg;
  cfg.horizon = from_ms(horizon_ms);
  sim::NoFaultPlan nofault;
  const auto trace = sim::simulate(ts, scheme, nofault, cfg);
  return core::to_ms(trace.active_time());
}

TEST(PaperFigure1, DualPriorityConsumes15UnitsInHyperPeriod) {
  const auto ts = workload::paper_fig1_taskset();
  sched::MkssDp dp;
  EXPECT_DOUBLE_EQ(active_units(ts, dp, 20), 15.0);
}

TEST(PaperFigure1, ScheduleDetails) {
  const auto ts = workload::paper_fig1_taskset();
  sched::MkssDp dp;
  sim::SimConfig cfg;
  cfg.horizon = from_ms(std::int64_t{20});
  sim::NoFaultPlan nofault;
  const auto trace = sim::simulate(ts, dp, nofault, cfg);

  // Promotion delays are Y1 = Y2 = 1ms.
  EXPECT_EQ(dp.promotion_delays()[0], from_ms(std::int64_t{1}));
  EXPECT_EQ(dp.promotion_delays()[1], from_ms(std::int64_t{1}));
  // tau1's mains run on the primary, tau2's on the spare (preference
  // partition); each backup on the opposite processor.
  for (const auto& s : trace.segments) {
    if (s.kind == sim::CopyKind::kMain) {
      EXPECT_EQ(s.proc, s.job.task == 0 ? sim::kPrimary : sim::kSpare);
    } else if (s.kind == sim::CopyKind::kBackup) {
      EXPECT_EQ(s.proc, s.job.task == 0 ? sim::kSpare : sim::kPrimary);
    }
  }
  // Every mandatory job met; the two canceled backups of Figure 1 appear.
  EXPECT_EQ(trace.stats.mandatory_misses, 0u);
  EXPECT_GE(trace.stats.backups_canceled, 2u);
}

TEST(PaperFigure2, UrgencyLimitedDynamicPatternsConsume12Units) {
  const auto ts = workload::paper_fig1_taskset();
  sched::GreedyOptions opts;
  opts.max_selected_fd = 1;
  sched::MkssGreedy greedy(opts);
  EXPECT_DOUBLE_EQ(active_units(ts, greedy, 20), 12.0);
}

TEST(PaperFigure2, TwentyPercentBelowDualPriority) {
  const auto ts = workload::paper_fig1_taskset();
  sched::MkssDp dp;
  sched::GreedyOptions opts;
  opts.max_selected_fd = 1;
  sched::MkssGreedy greedy(opts);
  const double dp_units = active_units(ts, dp, 20);
  const double dyn_units = active_units(ts, greedy, 20);
  EXPECT_NEAR((dp_units - dyn_units) / dp_units, 0.20, 1e-9);
}

TEST(PaperFigure2, ExecutedJobsMatchTheNarrative) {
  // O21 executed first (more urgent than O11); O11 never invoked; O12, J13,
  // J22 executed as optional.
  const auto ts = workload::paper_fig1_taskset();
  sched::GreedyOptions opts;
  opts.max_selected_fd = 1;
  sched::MkssGreedy greedy(opts);
  sim::SimConfig cfg;
  cfg.horizon = from_ms(std::int64_t{20});
  sim::NoFaultPlan nofault;
  const auto trace = sim::simulate(ts, greedy, nofault, cfg);

  ASSERT_FALSE(trace.segments.empty());
  EXPECT_EQ(trace.segments[0].job.task, 1u);  // O21 first
  EXPECT_EQ(trace.segments[0].span.begin, 0);
  for (const auto& s : trace.segments) {
    EXPECT_EQ(s.kind, sim::CopyKind::kOptional);  // nothing ever mandatory
    EXPECT_FALSE(s.job.task == 0 && s.job.job == 1) << "O11 must not execute";
  }
  // J11 misses; everything else that ran met its deadline.
  ASSERT_EQ(trace.jobs.size(), 6u);
  EXPECT_EQ(trace.stats.jobs_missed, 2u);  // O11 skipped-infeasible + tau1 job 4 skipped
}

TEST(PaperFigure3, FullGreedyExecutesExcessively) {
  const auto ts = workload::paper_fig3_taskset();
  sched::MkssGreedy greedy;  // default: execute every optional job
  const double units = active_units(ts, greedy, 25);
  // Paper draws 20; our faithful greedy also runs tau1's feasible fifth job
  // and the tail job released at t=24, giving 23.
  EXPECT_DOUBLE_EQ(units, 23.0);
  EXPECT_GE(units, 20.0);
}

TEST(PaperFigure4, SelectiveConsumes14UnitsBefore25) {
  const auto ts = workload::paper_fig3_taskset();
  sched::MkssSelective selective;
  EXPECT_DOUBLE_EQ(active_units(ts, selective, 25), 14.0);
}

TEST(PaperFigure4, AtLeastThirtyPercentBelowGreedy) {
  // "The total active energy consumption before time t = 25 is reduced to 14
  // units, which is 30% lower than that in Figure 3."
  const auto ts = workload::paper_fig3_taskset();
  sched::MkssGreedy greedy;
  sched::MkssSelective selective;
  const double g = active_units(ts, greedy, 25);
  const double s = active_units(ts, selective, 25);
  EXPECT_GE((g - s) / g, 0.30);
}

TEST(PaperFigure4, OptionalJobsAlternateBetweenProcessors) {
  const auto ts = workload::paper_fig3_taskset();
  sched::MkssSelective selective;
  sim::SimConfig cfg;
  cfg.horizon = from_ms(std::int64_t{25});
  sim::NoFaultPlan nofault;
  const auto trace = sim::simulate(ts, selective, nofault, cfg);

  // Consecutive executed optional jobs of the same task land on different
  // processors ("executed in the primary processor and the spare processor
  // alternatively"). A preempted job may own several segments, so compare
  // per job, not per segment.
  std::array<std::optional<sim::ProcessorId>, 2> last{};
  std::array<std::uint64_t, 2> last_job{0, 0};
  std::array<int, 2> executed{};
  for (const auto& s : trace.segments) {
    if (s.kind != sim::CopyKind::kOptional) continue;
    const auto task = s.job.task;
    if (s.job.job == last_job[task]) continue;  // same job, later segment
    if (last[task]) {
      EXPECT_NE(*last[task], s.proc) << "task " << task + 1;
    }
    last[task] = s.proc;
    last_job[task] = s.job.job;
    ++executed[task];
  }
  EXPECT_GE(executed[0], 2);
  EXPECT_GE(executed[1], 2);
}

TEST(PaperSectionIII, SelectiveBeatsDualPriorityOnFigure1Set) {
  // The motivation: dynamic patterns save energy vs. static-pattern DP.
  const auto ts = workload::paper_fig1_taskset();
  sched::MkssDp dp;
  sched::MkssSelective selective;
  EXPECT_LT(active_units(ts, selective, 20), active_units(ts, dp, 20));
}

TEST(PaperFigure1, StaticReferenceIsMostExpensive) {
  const auto ts = workload::paper_fig1_taskset();
  sched::MkssSt st;
  sched::MkssDp dp;
  const double st_units = active_units(ts, st, 20);
  const double dp_units = active_units(ts, dp, 20);
  // ST runs 3 mandatory jobs in lock-step on both processors: 18 units.
  EXPECT_DOUBLE_EQ(st_units, 18.0);
  EXPECT_LT(dp_units, st_units);
}

}  // namespace
}  // namespace mkss
