// Unit tests: DVS extension -- frequency ladder search, engine-level
// execution stretching, frequency-dependent power, and scheme integration.
#include <gtest/gtest.h>

#include "energy/energy_model.hpp"
#include "harness/evaluation.hpp"
#include "metrics/qos.hpp"
#include "sched/dvs.hpp"
#include "sched/mkss_dp.hpp"
#include "sched/mkss_selective.hpp"
#include "workload/scenarios.hpp"

namespace mkss::sched {
namespace {

using core::Task;
using core::TaskSet;
using core::from_ms;

TEST(Dvs, ScaleWcetsStretchesAndCaps) {
  const TaskSet ts({Task::from_ms(10, 10, 2, 1, 2), Task::from_ms(20, 20, 12, 1, 2)});
  const TaskSet half = scale_wcets(ts, 0.5);
  EXPECT_EQ(half[0].wcet, from_ms(std::int64_t{4}));
  // 12 / 0.5 = 24 > D = 20: capped at the deadline (and hence infeasible).
  EXPECT_EQ(half[1].wcet, from_ms(std::int64_t{20}));
}

TEST(Dvs, LadderSearchFindsLowestFeasibleFrequency) {
  // One light task alone: can slow down to the ladder floor.
  const TaskSet light({Task::from_ms(10, 10, 2, 1, 2)});
  DvsOptions opts;
  opts.enabled = true;
  const double f = lowest_feasible_frequency(light, analysis::DemandModel::kAllJobs, opts);
  EXPECT_LE(f, 0.45);
  EXPECT_GE(f, opts.f_min - 1e-9);
}

TEST(Dvs, FullyLoadedTaskSetCannotSlowDown) {
  // Utilization ~1: any slowdown breaks the RTA.
  const TaskSet tight({Task::from_ms(10, 10, 5, 1, 2), Task::from_ms(20, 20, 9.8, 1, 2)});
  DvsOptions opts;
  const double f = lowest_feasible_frequency(tight, analysis::DemandModel::kAllJobs, opts);
  EXPECT_DOUBLE_EQ(f, 1.0);
}

TEST(Dvs, ScaledSetRemainsSchedulableAtChosenFrequency) {
  const auto ts = workload::paper_fig1_taskset();
  DvsOptions opts;
  for (const auto model : {analysis::DemandModel::kAllJobs,
                           analysis::DemandModel::kRPatternMandatory}) {
    const double f = lowest_feasible_frequency(ts, model, opts);
    EXPECT_TRUE(analysis::schedulable(scale_wcets(ts, f), model));
  }
}

TEST(Dvs, PowerModelIsMonotoneAndAnchored) {
  energy::PowerParams p;
  p.p_static = 0.3;
  p.alpha = 3.0;
  EXPECT_DOUBLE_EQ(p.power_at(1.0), 1.0);
  EXPECT_NEAR(p.power_at(0.5), 0.3 + 0.7 * 0.125, 1e-12);
  EXPECT_GT(p.power_at(0.8), p.power_at(0.5));
  EXPECT_GE(p.power_at(0.05), p.p_static);
}

TEST(Dvs, EngineStretchesExecutionAtReducedFrequency) {
  const TaskSet ts({Task::from_ms(10, 10, 2, 1, 1)});
  class HalfSpeed final : public SchemeBase {
   public:
    std::string name() const override { return "half"; }
    sim::ReleaseDecision on_release(core::TaskIndex, std::uint64_t,
                                    core::Ticks release) override {
      sim::ReleaseDecision d;
      d.mandatory = true;
      d.copies.push_back({sim::kPrimary, sim::CopyKind::kMain,
                          sim::Band::kMandatory, release, 0, 0.5});
      return d;
    }
    void on_outcome(core::TaskIndex, std::uint64_t, core::JobOutcome) override {}

   protected:
    void on_setup() override {}
  } scheme;
  sim::NoFaultPlan nofault;
  sim::SimConfig cfg;
  cfg.horizon = from_ms(std::int64_t{10});
  const auto trace = sim::simulate(ts, scheme, nofault, cfg);
  ASSERT_EQ(trace.segments.size(), 1u);
  EXPECT_EQ(trace.segments[0].span.length(), from_ms(std::int64_t{4}));  // 2 / 0.5
  EXPECT_DOUBLE_EQ(trace.segments[0].frequency, 0.5);
  EXPECT_EQ(trace.stats.jobs_met, 1u);

  // Energy: 4ms at P(0.5) is cheaper than 2ms at full power when the
  // dynamic exponent bites (alpha = 3, no static floor).
  energy::PowerParams p;
  p.p_idle = 0.0;
  const auto e = account_energy(trace, p);
  EXPECT_NEAR(e.per_proc[sim::kPrimary].active, 4.0 * 0.125, 1e-9);
  EXPECT_LT(e.per_proc[sim::kPrimary].active, 2.0);
}

TEST(Dvs, DpWithDvsKeepsDeadlinesAndSavesDynamicEnergy) {
  // A light task set where the full set can be slowed substantially.
  const TaskSet ts({Task::from_ms(20, 20, 2, 1, 2), Task::from_ms(40, 40, 3, 1, 2)});
  sim::SimConfig cfg;
  cfg.horizon = from_ms(std::int64_t{80});
  energy::PowerParams power;
  power.p_static = 0.05;

  DpOptions plain_opts;
  MkssDp plain(plain_opts);
  DpOptions dvs_opts;
  dvs_opts.dvs.enabled = true;
  MkssDp dvs(dvs_opts);

  const auto run_plain = harness::run_one(
      {.ts = ts, .scheme = &plain, .sim = cfg, .power = power});
  const auto run_dvs = harness::run_one(
      {.ts = ts, .scheme = &dvs, .sim = cfg, .power = power});
  EXPECT_LT(dvs.main_frequency(), 1.0);
  EXPECT_TRUE(run_dvs.qos.theorem1_holds());
  EXPECT_LT(run_dvs.energy.total(), run_plain.energy.total());
}

TEST(Dvs, SelectiveWithDvsKeepsTheorem1UnderFaults) {
  const auto ts = workload::paper_fig1_taskset();
  SelectiveOptions opts;
  opts.dvs.enabled = true;
  for (const bool fault : {false, true}) {
    MkssSelective scheme(opts);
    sim::SimConfig cfg;
    cfg.horizon = from_ms(std::int64_t{40});
    std::unique_ptr<sim::FaultPlan> plan;
    if (fault) {
      plan = std::make_unique<fault::ScenarioFaultPlan>(
          sim::PermanentFault{sim::kPrimary, from_ms(std::int64_t{7})},
          std::vector<double>{}, 1);
    } else {
      plan = std::make_unique<sim::NoFaultPlan>();
    }
    const auto run = harness::run_one(
        {.ts = ts, .scheme = &scheme, .faults = plan.get(), .sim = cfg});
    EXPECT_TRUE(run.qos.mk_satisfied) << "fault=" << fault;
    EXPECT_EQ(run.qos.mandatory_misses, 0u) << "fault=" << fault;
  }
}

TEST(Dvs, DegradedModeRunsFullSpeed) {
  // After the permanent fault every copy must be full speed (no sibling to
  // cancel it; gambling the deadline on a slowdown would be unsafe).
  const auto ts = workload::paper_fig1_taskset();
  SelectiveOptions opts;
  opts.dvs.enabled = true;
  MkssSelective scheme(opts);
  fault::ScenarioFaultPlan plan(sim::PermanentFault{sim::kSpare, 0},
                                std::vector<double>{}, 1);
  sim::SimConfig cfg;
  cfg.horizon = from_ms(std::int64_t{40});
  const auto trace = sim::simulate(ts, scheme, plan, cfg);
  for (const auto& s : trace.segments) {
    EXPECT_DOUBLE_EQ(s.frequency, 1.0);
  }
}

}  // namespace
}  // namespace mkss::sched
