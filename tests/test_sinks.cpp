// Equivalence tests: the trace-free StatsSink must reproduce the full-trace
// path (account_energy + audit_qos over a materialized SimulationTrace)
// bit for bit -- on single runs across fault plans, DPD parameters and DVS,
// and through the sweep harness across sink kinds and thread counts.
#include <gtest/gtest.h>

#include <memory>

#include "energy/energy_model.hpp"
#include "fault/injection.hpp"
#include "harness/batch_runner.hpp"
#include "harness/evaluation.hpp"
#include "metrics/qos.hpp"
#include "sched/factory.hpp"
#include "sched/mkss_dp.hpp"
#include "workload/scenarios.hpp"
#include "workload/taskset_gen.hpp"

namespace mkss {
namespace {

using core::TaskSet;
using core::from_ms;

void expect_same_energy(const energy::EnergyBreakdown& full,
                        const energy::EnergyBreakdown& lean) {
  ASSERT_EQ(full.per_proc.size(), lean.per_proc.size());
  for (std::size_t p = 0; p < full.per_proc.size(); ++p) {
    SCOPED_TRACE("processor " + std::to_string(p));
    const auto& a = full.per_proc[p];
    const auto& b = lean.per_proc[p];
    EXPECT_EQ(a.active, b.active);  // exact: the claim is bit-identity
    EXPECT_EQ(a.idle, b.idle);
    EXPECT_EQ(a.transition, b.transition);
    EXPECT_EQ(a.sleep, b.sleep);
    EXPECT_EQ(a.busy_time, b.busy_time);
    EXPECT_EQ(a.idle_time, b.idle_time);
    EXPECT_EQ(a.slept_time, b.slept_time);
  }
}

void expect_same_qos(const metrics::QosReport& full,
                     const metrics::QosReport& lean) {
  EXPECT_EQ(full.mk_satisfied, lean.mk_satisfied);
  EXPECT_EQ(full.mandatory_misses, lean.mandatory_misses);
  ASSERT_EQ(full.per_task.size(), lean.per_task.size());
  for (std::size_t i = 0; i < full.per_task.size(); ++i) {
    SCOPED_TRACE("task " + std::to_string(i));
    EXPECT_EQ(full.per_task[i].jobs, lean.per_task[i].jobs);
    EXPECT_EQ(full.per_task[i].met, lean.per_task[i].met);
    EXPECT_EQ(full.per_task[i].missed, lean.per_task[i].missed);
    EXPECT_EQ(full.per_task[i].violation.has_value(),
              lean.per_task[i].violation.has_value());
  }
}

/// Runs the same (set, scheme kind, fault plan, power) once through each
/// sink -- a fresh scheme instance per run, schemes are stateful -- and
/// compares energy and QoS exactly.
void expect_sinks_agree(const TaskSet& ts, sched::SchemeKind kind,
                        const sim::FaultPlan& faults, const sim::SimConfig& cfg,
                        const energy::PowerParams& power) {
  harness::RunContext ctx;
  harness::BatchRunner runner(ts, &ctx);

  const auto full_scheme = sched::make_scheme(kind);
  runner.bind(*full_scheme);
  const sim::SimulationTrace& trace = runner.run_full(*full_scheme, faults, cfg);
  const energy::EnergyBreakdown full_energy = energy::account_energy(trace, power);
  const metrics::QosReport full_qos = metrics::audit_qos(trace, ts);

  const auto lean_scheme = sched::make_scheme(kind);
  runner.bind(*lean_scheme);
  const sim::StatsSink& stats = runner.run_stats(*lean_scheme, faults, cfg, power);

  expect_same_energy(full_energy, stats.energy());
  expect_same_qos(full_qos, stats.qos());
}

sim::SimConfig config_ms(std::int64_t horizon_ms) {
  sim::SimConfig cfg;
  cfg.horizon = from_ms(horizon_ms);
  return cfg;
}

const std::array<sched::SchemeKind, 4> kAllSchemes = {
    sched::SchemeKind::kSt, sched::SchemeKind::kDp, sched::SchemeKind::kGreedy,
    sched::SchemeKind::kSelective};

TEST(Sinks, StatsMatchesFullTraceFaultFree) {
  const auto ts = workload::paper_fig1_taskset();
  const sim::NoFaultPlan nofault;
  for (const auto kind : kAllSchemes) {
    SCOPED_TRACE(sched::to_string(kind));
    expect_sinks_agree(ts, kind, nofault, config_ms(40), {});
  }
}

TEST(Sinks, StatsMatchesFullTraceUnderPermanentFault) {
  const auto ts = workload::paper_fig1_taskset();
  for (const auto proc : {sim::kPrimary, sim::kSpare}) {
    const fault::ScenarioFaultPlan plan(
        sim::PermanentFault{proc, from_ms(std::int64_t{7})},
        std::vector<double>{}, 1);
    for (const auto kind : kAllSchemes) {
      SCOPED_TRACE(sched::to_string(kind));
      expect_sinks_agree(ts, kind, plan, config_ms(40), {});
    }
  }
}

TEST(Sinks, StatsMatchesFullTraceUnderTransients) {
  const auto ts = workload::paper_fig1_taskset();
  const fault::ScenarioFaultPlan plan(
      std::nullopt, fault::transient_probabilities(ts, 1e-2), 42);
  for (const auto kind : kAllSchemes) {
    SCOPED_TRACE(sched::to_string(kind));
    expect_sinks_agree(ts, kind, plan, config_ms(100), {});
  }
}

TEST(Sinks, StatsMatchesFullTraceWithDpdAndLeakage) {
  const auto ts = workload::paper_fig1_taskset();
  const sim::NoFaultPlan nofault;
  energy::PowerParams power;
  power.p_idle = 0.2;
  power.p_sleep = 0.02;
  power.p_static = 0.3;
  power.break_even = from_ms(std::int64_t{2});
  sim::SimConfig cfg = config_ms(40);
  cfg.break_even = power.break_even;
  for (const auto kind : kAllSchemes) {
    SCOPED_TRACE(sched::to_string(kind));
    expect_sinks_agree(ts, kind, nofault, cfg, power);
  }
}

TEST(Sinks, StatsMatchesFullTraceWithDvsFrequencies) {
  // A DVS-enabled scheme emits segments at f < 1; the online accumulator
  // must charge power_at(f) exactly like account_energy.
  const TaskSet ts({core::Task::from_ms(20, 20, 2, 1, 2),
                    core::Task::from_ms(40, 40, 3, 1, 2)});
  const sim::NoFaultPlan nofault;
  energy::PowerParams power;
  power.p_static = 0.05;
  harness::RunContext ctx;
  harness::BatchRunner runner(ts, &ctx);
  const sim::SimConfig cfg = config_ms(80);

  sched::DpOptions opts;
  opts.dvs.enabled = true;
  sched::MkssDp full_scheme(opts);
  runner.bind(full_scheme);
  const sim::SimulationTrace& trace = runner.run_full(full_scheme, nofault, cfg);
  ASSERT_LT(full_scheme.main_frequency(), 1.0);
  const auto full_energy = energy::account_energy(trace, power);
  const auto full_qos = metrics::audit_qos(trace, ts);

  sched::MkssDp lean_scheme(opts);
  runner.bind(lean_scheme);
  const sim::StatsSink& stats = runner.run_stats(lean_scheme, nofault, cfg, power);
  expect_same_energy(full_energy, stats.energy());
  expect_same_qos(full_qos, stats.qos());
}

TEST(Sinks, StatsMatchesFullTraceOnRandomizedSets) {
  workload::GenParams params;
  const auto batch = workload::generate_bin(params, 0.3, 0.4, 4, 2000, 7, 0);
  ASSERT_FALSE(batch.sets.empty());
  const fault::ScenarioFaultPlan plan(
      sim::PermanentFault{sim::kPrimary, from_ms(std::int64_t{500})},
      std::vector<double>{}, 3);
  for (const auto& ts : batch.sets) {
    for (const auto kind : kAllSchemes) {
      SCOPED_TRACE(ts.describe() + " / " + sched::to_string(kind));
      expect_sinks_agree(ts, kind, plan, config_ms(1000), {});
    }
  }
}

// --- Sweep-level equivalence --------------------------------------------

void expect_same_sweep(const harness::SweepResult& a,
                       const harness::SweepResult& b) {
  EXPECT_EQ(a.qos_failures, b.qos_failures);
  ASSERT_EQ(a.errors.size(), b.errors.size());
  for (std::size_t i = 0; i < a.errors.size(); ++i) {
    EXPECT_EQ(a.errors[i].bin, b.errors[i].bin);
    EXPECT_EQ(a.errors[i].set, b.errors[i].set);
    EXPECT_EQ(a.errors[i].variant, b.errors[i].variant);
    EXPECT_EQ(a.errors[i].message, b.errors[i].message);
  }
  ASSERT_EQ(a.bins.size(), b.bins.size());
  for (std::size_t i = 0; i < a.bins.size(); ++i) {
    SCOPED_TRACE("bin " + std::to_string(i));
    EXPECT_EQ(a.bins[i].sets, b.bins[i].sets);
    EXPECT_EQ(a.bins[i].attempts, b.bins[i].attempts);
    ASSERT_EQ(a.bins[i].normalized.size(), b.bins[i].normalized.size());
    for (std::size_t s = 0; s < a.bins[i].normalized.size(); ++s) {
      SCOPED_TRACE("scheme " + std::to_string(s));
      EXPECT_EQ(a.bins[i].normalized[s].mean(), b.bins[i].normalized[s].mean());
      EXPECT_EQ(a.bins[i].normalized[s].stddev(),
                b.bins[i].normalized[s].stddev());
      EXPECT_EQ(a.bins[i].absolute[s].mean(), b.bins[i].absolute[s].mean());
    }
  }
}

harness::SweepConfig small_sweep() {
  harness::SweepConfig cfg;
  cfg.bin_starts = {0.2, 0.4};
  cfg.sets_per_bin = 3;
  cfg.max_attempts_per_bin = 2000;
  cfg.horizon_cap = from_ms(std::int64_t{2000});
  return cfg;
}

TEST(Sinks, SweepStatsSinkBitIdenticalAcrossSinkAndThreadCounts) {
  auto ref_cfg = small_sweep();
  ref_cfg.audit = false;
  ref_cfg.sink = harness::SweepConfig::Sink::kFullTrace;
  ref_cfg.num_threads = 1;
  const auto reference = harness::run_sweep(ref_cfg);

  for (const std::size_t threads : {std::size_t{1}, std::size_t{2}, std::size_t{0}}) {
    SCOPED_TRACE("threads " + std::to_string(threads));
    auto cfg = small_sweep();
    cfg.audit = false;
    cfg.sink = harness::SweepConfig::Sink::kStats;
    cfg.num_threads = threads;
    expect_same_sweep(reference, harness::run_sweep(cfg));
  }
}

TEST(Sinks, AuditedFullTraceSweepMatchesLeanSweep) {
  // kAuto with audit on materializes traces; the lean no-audit path must
  // still produce the same statistics (nothing gets quarantined here).
  auto audited_cfg = small_sweep();
  audited_cfg.audit = true;
  const auto audited = harness::run_sweep(audited_cfg);
  ASSERT_TRUE(audited.errors.empty());

  auto lean_cfg = small_sweep();
  lean_cfg.audit = false;
  lean_cfg.sink = harness::SweepConfig::Sink::kStats;
  const auto lean = harness::run_sweep(lean_cfg);
  expect_same_sweep(audited, lean);
}

}  // namespace
}  // namespace mkss
