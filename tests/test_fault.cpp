// Unit tests: fault plans -- determinism, probability calibration, scenario
// construction -- and permanent-fault boundary instants (fault at t = 0,
// fault exactly at a completion tick) under the real schemes.
#include <gtest/gtest.h>

#include <cmath>

#include "audit/trace_auditor.hpp"
#include "fault/campaign.hpp"
#include "fault/injection.hpp"
#include "sched/factory.hpp"
#include "sim/engine.hpp"
#include "workload/scenarios.hpp"

namespace mkss::fault {
namespace {

TEST(Faults, ScenarioNames) {
  EXPECT_STREQ(to_string(Scenario::kNoFault), "no-fault");
  EXPECT_STREQ(to_string(Scenario::kPermanentOnly), "permanent");
  EXPECT_STREQ(to_string(Scenario::kPermanentAndTransient), "permanent+transient");
}

TEST(Faults, TransientProbabilitiesFollowPoissonModel) {
  const auto ts = workload::paper_fig1_taskset();  // C = 3ms both
  const auto p = transient_probabilities(ts, 0.1);
  ASSERT_EQ(p.size(), 2u);
  EXPECT_NEAR(p[0], 1.0 - std::exp(-0.3), 1e-12);
  EXPECT_NEAR(p[1], 1.0 - std::exp(-0.3), 1e-12);
  const auto zero = transient_probabilities(ts, 0.0);
  EXPECT_EQ(zero[0], 0.0);
}

TEST(Faults, DrawsAreDeterministicPerJobAndSlot) {
  ScenarioFaultPlan plan(std::nullopt, {0.5, 0.5}, 99);
  for (std::uint64_t j = 1; j < 50; ++j) {
    const core::JobId id{0, j};
    EXPECT_EQ(plan.transient(id, 0), plan.transient(id, 0));
    EXPECT_EQ(plan.transient(id, 1), plan.transient(id, 1));
  }
}

TEST(Faults, SlotsAreIndependent) {
  ScenarioFaultPlan plan(std::nullopt, {0.5}, 7);
  int differ = 0;
  for (std::uint64_t j = 1; j <= 200; ++j) {
    const core::JobId id{0, j};
    if (plan.transient(id, 0) != plan.transient(id, 1)) ++differ;
  }
  EXPECT_GT(differ, 50);  // ~50% expected
}

TEST(Faults, EmpiricalRateMatchesProbability) {
  ScenarioFaultPlan plan(std::nullopt, {0.2}, 31);
  int hits = 0;
  const int n = 20000;
  for (int j = 1; j <= n; ++j) {
    hits += plan.transient(core::JobId{0, static_cast<std::uint64_t>(j)}, 0);
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.2, 0.02);
}

TEST(Faults, UnknownTaskNeverFaults) {
  ScenarioFaultPlan plan(std::nullopt, {1.0}, 3);
  EXPECT_FALSE(plan.transient(core::JobId{5, 1}, 0));
}

TEST(Faults, NoFaultScenarioPlan) {
  core::Rng rng(1);
  const auto ts = workload::paper_fig1_taskset();
  const auto plan = make_scenario_plan(Scenario::kNoFault, ts,
                                       core::from_ms(std::int64_t{100}), 1e-6, rng);
  EXPECT_FALSE(plan->permanent().has_value());
  EXPECT_FALSE(plan->transient(core::JobId{0, 1}, 0));
}

TEST(Faults, PermanentScenarioDrawsWithinHorizon) {
  core::Rng rng(2);
  const auto ts = workload::paper_fig1_taskset();
  const core::Ticks horizon = core::from_ms(std::int64_t{100});
  for (int i = 0; i < 50; ++i) {
    const auto plan =
        make_scenario_plan(Scenario::kPermanentOnly, ts, horizon, 1e-6, rng);
    const auto pf = plan->permanent();
    ASSERT_TRUE(pf.has_value());
    EXPECT_GE(pf->time, 0);
    EXPECT_LT(pf->time, horizon);
    // Permanent-only: transients disabled.
    EXPECT_FALSE(plan->transient(core::JobId{0, 1}, 0));
  }
}

TEST(Faults, PermanentScenarioHitsBothProcessors) {
  core::Rng rng(3);
  const auto ts = workload::paper_fig1_taskset();
  bool saw_primary = false, saw_spare = false;
  for (int i = 0; i < 100; ++i) {
    const auto plan = make_scenario_plan(Scenario::kPermanentOnly, ts,
                                         core::from_ms(std::int64_t{100}), 0, rng);
    const auto pf = plan->permanent();
    saw_primary |= (pf->proc == sim::kPrimary);
    saw_spare |= (pf->proc == sim::kSpare);
  }
  EXPECT_TRUE(saw_primary);
  EXPECT_TRUE(saw_spare);
}

sim::SimulationTrace run_st(const core::TaskSet& ts, const sim::FaultPlan& plan,
                            std::int64_t horizon_ms) {
  const auto scheme = sched::make_scheme(sched::SchemeKind::kSt);
  sim::SimConfig cfg;
  cfg.horizon = core::from_ms(horizon_ms);
  return sim::simulate(ts, *scheme, plan, cfg);
}

TEST(FaultBoundary, PermanentFaultAtTimeZero) {
  // The fault strikes before the first release: every copy must land on the
  // survivor, and the mandatory guarantee must still hold end to end.
  const auto ts = workload::paper_fig1_taskset();
  ExplicitFaultPlan plan;
  plan.set_permanent({sim::kPrimary, 0});
  const auto trace = run_st(ts, plan, 20);

  EXPECT_EQ(trace.death_time[sim::kPrimary], 0);
  EXPECT_EQ(trace.busy_time[sim::kPrimary], 0);
  for (const auto& s : trace.segments) EXPECT_EQ(s.proc, sim::kSpare);
  EXPECT_EQ(trace.stats.mandatory_misses, 0u);
  const auto report = audit::TraceAuditor().audit(trace, ts);
  EXPECT_TRUE(report.ok()) << report.to_string();
}

TEST(FaultBoundary, PermanentFaultExactlyAtCompletionTick) {
  // Under ST on fig1 the main of J_{1,1} completes exactly at t = 3ms.
  // Completions are processed before the permanent fault at the same
  // instant, so the job is met and nothing is lost retroactively.
  const auto ts = workload::paper_fig1_taskset();
  const core::Ticks completion = core::from_ms(std::int64_t{3});
  ExplicitFaultPlan plan;
  plan.set_permanent({sim::kPrimary, completion});
  const auto trace = run_st(ts, plan, 20);

  EXPECT_EQ(trace.death_time[sim::kPrimary], completion);
  const auto& j11 = trace.jobs.front();
  EXPECT_EQ(j11.job.id.task, 0u);
  EXPECT_TRUE(j11.resolved);
  EXPECT_EQ(j11.outcome, core::JobOutcome::kMet);
  EXPECT_LE(j11.resolved_at, completion);
  for (const auto& s : trace.segments) {
    if (s.proc == sim::kPrimary) {
      EXPECT_LE(s.span.end, completion);
    }
  }
  EXPECT_EQ(trace.stats.mandatory_misses, 0u);
  const auto report = audit::TraceAuditor().audit(trace, ts);
  EXPECT_TRUE(report.ok()) << report.to_string();
}

TEST(Faults, TransientScenarioEnablesTransients) {
  core::Rng rng(4);
  const auto ts = workload::paper_fig1_taskset();
  // Inflated rate so some job in a modest window faults.
  const auto plan = make_scenario_plan(Scenario::kPermanentAndTransient, ts,
                                       core::from_ms(std::int64_t{100}), 0.5, rng);
  int hits = 0;
  for (std::uint64_t j = 1; j <= 100; ++j) {
    hits += plan->transient(core::JobId{0, j}, 0);
    hits += plan->transient(core::JobId{1, j}, 1);
  }
  EXPECT_GT(hits, 0);
}

}  // namespace
}  // namespace mkss::fault
