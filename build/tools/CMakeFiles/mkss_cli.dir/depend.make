# Empty dependencies file for mkss_cli.
# This may be replaced when dependencies are built.
