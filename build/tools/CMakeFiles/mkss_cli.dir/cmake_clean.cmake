file(REMOVE_RECURSE
  "CMakeFiles/mkss_cli.dir/mkss_cli.cpp.o"
  "CMakeFiles/mkss_cli.dir/mkss_cli.cpp.o.d"
  "mkss_cli"
  "mkss_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mkss_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
