
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/hyperperiod.cpp" "src/core/CMakeFiles/core.dir/hyperperiod.cpp.o" "gcc" "src/core/CMakeFiles/core.dir/hyperperiod.cpp.o.d"
  "/root/repo/src/core/job.cpp" "src/core/CMakeFiles/core.dir/job.cpp.o" "gcc" "src/core/CMakeFiles/core.dir/job.cpp.o.d"
  "/root/repo/src/core/mk_constraint.cpp" "src/core/CMakeFiles/core.dir/mk_constraint.cpp.o" "gcc" "src/core/CMakeFiles/core.dir/mk_constraint.cpp.o.d"
  "/root/repo/src/core/pattern.cpp" "src/core/CMakeFiles/core.dir/pattern.cpp.o" "gcc" "src/core/CMakeFiles/core.dir/pattern.cpp.o.d"
  "/root/repo/src/core/rng.cpp" "src/core/CMakeFiles/core.dir/rng.cpp.o" "gcc" "src/core/CMakeFiles/core.dir/rng.cpp.o.d"
  "/root/repo/src/core/task.cpp" "src/core/CMakeFiles/core.dir/task.cpp.o" "gcc" "src/core/CMakeFiles/core.dir/task.cpp.o.d"
  "/root/repo/src/core/time.cpp" "src/core/CMakeFiles/core.dir/time.cpp.o" "gcc" "src/core/CMakeFiles/core.dir/time.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
