file(REMOVE_RECURSE
  "libmkss_core.a"
)
