file(REMOVE_RECURSE
  "CMakeFiles/core.dir/hyperperiod.cpp.o"
  "CMakeFiles/core.dir/hyperperiod.cpp.o.d"
  "CMakeFiles/core.dir/job.cpp.o"
  "CMakeFiles/core.dir/job.cpp.o.d"
  "CMakeFiles/core.dir/mk_constraint.cpp.o"
  "CMakeFiles/core.dir/mk_constraint.cpp.o.d"
  "CMakeFiles/core.dir/pattern.cpp.o"
  "CMakeFiles/core.dir/pattern.cpp.o.d"
  "CMakeFiles/core.dir/rng.cpp.o"
  "CMakeFiles/core.dir/rng.cpp.o.d"
  "CMakeFiles/core.dir/task.cpp.o"
  "CMakeFiles/core.dir/task.cpp.o.d"
  "CMakeFiles/core.dir/time.cpp.o"
  "CMakeFiles/core.dir/time.cpp.o.d"
  "libmkss_core.a"
  "libmkss_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
