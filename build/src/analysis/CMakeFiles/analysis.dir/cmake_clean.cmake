file(REMOVE_RECURSE
  "CMakeFiles/analysis.dir/breakdown.cpp.o"
  "CMakeFiles/analysis.dir/breakdown.cpp.o.d"
  "CMakeFiles/analysis.dir/postponement.cpp.o"
  "CMakeFiles/analysis.dir/postponement.cpp.o.d"
  "CMakeFiles/analysis.dir/promotion.cpp.o"
  "CMakeFiles/analysis.dir/promotion.cpp.o.d"
  "CMakeFiles/analysis.dir/rta.cpp.o"
  "CMakeFiles/analysis.dir/rta.cpp.o.d"
  "CMakeFiles/analysis.dir/schedulability.cpp.o"
  "CMakeFiles/analysis.dir/schedulability.cpp.o.d"
  "libmkss_analysis.a"
  "libmkss_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
