file(REMOVE_RECURSE
  "libmkss_analysis.a"
)
