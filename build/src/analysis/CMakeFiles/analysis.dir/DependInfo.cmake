
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/breakdown.cpp" "src/analysis/CMakeFiles/analysis.dir/breakdown.cpp.o" "gcc" "src/analysis/CMakeFiles/analysis.dir/breakdown.cpp.o.d"
  "/root/repo/src/analysis/postponement.cpp" "src/analysis/CMakeFiles/analysis.dir/postponement.cpp.o" "gcc" "src/analysis/CMakeFiles/analysis.dir/postponement.cpp.o.d"
  "/root/repo/src/analysis/promotion.cpp" "src/analysis/CMakeFiles/analysis.dir/promotion.cpp.o" "gcc" "src/analysis/CMakeFiles/analysis.dir/promotion.cpp.o.d"
  "/root/repo/src/analysis/rta.cpp" "src/analysis/CMakeFiles/analysis.dir/rta.cpp.o" "gcc" "src/analysis/CMakeFiles/analysis.dir/rta.cpp.o.d"
  "/root/repo/src/analysis/schedulability.cpp" "src/analysis/CMakeFiles/analysis.dir/schedulability.cpp.o" "gcc" "src/analysis/CMakeFiles/analysis.dir/schedulability.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
