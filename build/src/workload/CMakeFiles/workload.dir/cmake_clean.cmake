file(REMOVE_RECURSE
  "CMakeFiles/workload.dir/scenarios.cpp.o"
  "CMakeFiles/workload.dir/scenarios.cpp.o.d"
  "CMakeFiles/workload.dir/taskset_gen.cpp.o"
  "CMakeFiles/workload.dir/taskset_gen.cpp.o.d"
  "libmkss_workload.a"
  "libmkss_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
