file(REMOVE_RECURSE
  "libmkss_workload.a"
)
