file(REMOVE_RECURSE
  "CMakeFiles/harness.dir/evaluation.cpp.o"
  "CMakeFiles/harness.dir/evaluation.cpp.o.d"
  "libmkss_harness.a"
  "libmkss_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
