file(REMOVE_RECURSE
  "libmkss_harness.a"
)
