
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/io/taskset_io.cpp" "src/io/CMakeFiles/io.dir/taskset_io.cpp.o" "gcc" "src/io/CMakeFiles/io.dir/taskset_io.cpp.o.d"
  "/root/repo/src/io/trace_json.cpp" "src/io/CMakeFiles/io.dir/trace_json.cpp.o" "gcc" "src/io/CMakeFiles/io.dir/trace_json.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/core.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
