file(REMOVE_RECURSE
  "CMakeFiles/io.dir/taskset_io.cpp.o"
  "CMakeFiles/io.dir/taskset_io.cpp.o.d"
  "CMakeFiles/io.dir/trace_json.cpp.o"
  "CMakeFiles/io.dir/trace_json.cpp.o.d"
  "libmkss_io.a"
  "libmkss_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
