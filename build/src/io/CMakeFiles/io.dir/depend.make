# Empty dependencies file for io.
# This may be replaced when dependencies are built.
