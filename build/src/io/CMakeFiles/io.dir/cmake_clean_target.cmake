file(REMOVE_RECURSE
  "libmkss_io.a"
)
