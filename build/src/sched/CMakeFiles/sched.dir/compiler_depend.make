# Empty compiler generated dependencies file for sched.
# This may be replaced when dependencies are built.
