file(REMOVE_RECURSE
  "CMakeFiles/sched.dir/backup_delay.cpp.o"
  "CMakeFiles/sched.dir/backup_delay.cpp.o.d"
  "CMakeFiles/sched.dir/dvs.cpp.o"
  "CMakeFiles/sched.dir/dvs.cpp.o.d"
  "CMakeFiles/sched.dir/factory.cpp.o"
  "CMakeFiles/sched.dir/factory.cpp.o.d"
  "CMakeFiles/sched.dir/mkss_dp.cpp.o"
  "CMakeFiles/sched.dir/mkss_dp.cpp.o.d"
  "CMakeFiles/sched.dir/mkss_greedy.cpp.o"
  "CMakeFiles/sched.dir/mkss_greedy.cpp.o.d"
  "CMakeFiles/sched.dir/mkss_selective.cpp.o"
  "CMakeFiles/sched.dir/mkss_selective.cpp.o.d"
  "CMakeFiles/sched.dir/mkss_st.cpp.o"
  "CMakeFiles/sched.dir/mkss_st.cpp.o.d"
  "libmkss_sched.a"
  "libmkss_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
