file(REMOVE_RECURSE
  "libmkss_sched.a"
)
