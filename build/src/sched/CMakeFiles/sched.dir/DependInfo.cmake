
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sched/backup_delay.cpp" "src/sched/CMakeFiles/sched.dir/backup_delay.cpp.o" "gcc" "src/sched/CMakeFiles/sched.dir/backup_delay.cpp.o.d"
  "/root/repo/src/sched/dvs.cpp" "src/sched/CMakeFiles/sched.dir/dvs.cpp.o" "gcc" "src/sched/CMakeFiles/sched.dir/dvs.cpp.o.d"
  "/root/repo/src/sched/factory.cpp" "src/sched/CMakeFiles/sched.dir/factory.cpp.o" "gcc" "src/sched/CMakeFiles/sched.dir/factory.cpp.o.d"
  "/root/repo/src/sched/mkss_dp.cpp" "src/sched/CMakeFiles/sched.dir/mkss_dp.cpp.o" "gcc" "src/sched/CMakeFiles/sched.dir/mkss_dp.cpp.o.d"
  "/root/repo/src/sched/mkss_greedy.cpp" "src/sched/CMakeFiles/sched.dir/mkss_greedy.cpp.o" "gcc" "src/sched/CMakeFiles/sched.dir/mkss_greedy.cpp.o.d"
  "/root/repo/src/sched/mkss_selective.cpp" "src/sched/CMakeFiles/sched.dir/mkss_selective.cpp.o" "gcc" "src/sched/CMakeFiles/sched.dir/mkss_selective.cpp.o.d"
  "/root/repo/src/sched/mkss_st.cpp" "src/sched/CMakeFiles/sched.dir/mkss_st.cpp.o" "gcc" "src/sched/CMakeFiles/sched.dir/mkss_st.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/core.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
