file(REMOVE_RECURSE
  "libmkss_report.a"
)
