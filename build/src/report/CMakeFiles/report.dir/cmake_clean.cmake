file(REMOVE_RECURSE
  "CMakeFiles/report.dir/table.cpp.o"
  "CMakeFiles/report.dir/table.cpp.o.d"
  "libmkss_report.a"
  "libmkss_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
