file(REMOVE_RECURSE
  "libmkss_energy.a"
)
