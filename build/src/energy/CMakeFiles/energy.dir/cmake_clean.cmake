file(REMOVE_RECURSE
  "CMakeFiles/energy.dir/energy_model.cpp.o"
  "CMakeFiles/energy.dir/energy_model.cpp.o.d"
  "libmkss_energy.a"
  "libmkss_energy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
