file(REMOVE_RECURSE
  "CMakeFiles/fault.dir/injection.cpp.o"
  "CMakeFiles/fault.dir/injection.cpp.o.d"
  "libmkss_fault.a"
  "libmkss_fault.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fault.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
