file(REMOVE_RECURSE
  "libmkss_fault.a"
)
