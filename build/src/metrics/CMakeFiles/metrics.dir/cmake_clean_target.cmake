file(REMOVE_RECURSE
  "libmkss_metrics.a"
)
