# Empty dependencies file for metrics.
# This may be replaced when dependencies are built.
