file(REMOVE_RECURSE
  "CMakeFiles/metrics.dir/decomposition.cpp.o"
  "CMakeFiles/metrics.dir/decomposition.cpp.o.d"
  "CMakeFiles/metrics.dir/qos.cpp.o"
  "CMakeFiles/metrics.dir/qos.cpp.o.d"
  "CMakeFiles/metrics.dir/summary.cpp.o"
  "CMakeFiles/metrics.dir/summary.cpp.o.d"
  "libmkss_metrics.a"
  "libmkss_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
