file(REMOVE_RECURSE
  "CMakeFiles/sim.dir/engine.cpp.o"
  "CMakeFiles/sim.dir/engine.cpp.o.d"
  "CMakeFiles/sim.dir/gantt.cpp.o"
  "CMakeFiles/sim.dir/gantt.cpp.o.d"
  "CMakeFiles/sim.dir/types.cpp.o"
  "CMakeFiles/sim.dir/types.cpp.o.d"
  "libmkss_sim.a"
  "libmkss_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
