file(REMOVE_RECURSE
  "libmkss_sim.a"
)
