file(REMOVE_RECURSE
  "CMakeFiles/ablation_fault_time.dir/ablation_fault_time.cpp.o"
  "CMakeFiles/ablation_fault_time.dir/ablation_fault_time.cpp.o.d"
  "ablation_fault_time"
  "ablation_fault_time.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_fault_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
