# Empty dependencies file for ablation_fault_time.
# This may be replaced when dependencies are built.
