
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/ablation_overhead.cpp" "bench/CMakeFiles/ablation_overhead.dir/ablation_overhead.cpp.o" "gcc" "bench/CMakeFiles/ablation_overhead.dir/ablation_overhead.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/io/CMakeFiles/io.dir/DependInfo.cmake"
  "/root/repo/build/src/harness/CMakeFiles/harness.dir/DependInfo.cmake"
  "/root/repo/build/src/fault/CMakeFiles/fault.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/sched.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/workload.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/energy/CMakeFiles/energy.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/sim.dir/DependInfo.cmake"
  "/root/repo/build/src/report/CMakeFiles/report.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
