# Empty compiler generated dependencies file for ablation_exec_time.
# This may be replaced when dependencies are built.
