file(REMOVE_RECURSE
  "CMakeFiles/ablation_exec_time.dir/ablation_exec_time.cpp.o"
  "CMakeFiles/ablation_exec_time.dir/ablation_exec_time.cpp.o.d"
  "ablation_exec_time"
  "ablation_exec_time.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_exec_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
