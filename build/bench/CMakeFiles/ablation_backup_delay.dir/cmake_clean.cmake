file(REMOVE_RECURSE
  "CMakeFiles/ablation_backup_delay.dir/ablation_backup_delay.cpp.o"
  "CMakeFiles/ablation_backup_delay.dir/ablation_backup_delay.cpp.o.d"
  "ablation_backup_delay"
  "ablation_backup_delay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_backup_delay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
