# Empty compiler generated dependencies file for ablation_backup_delay.
# This may be replaced when dependencies are built.
