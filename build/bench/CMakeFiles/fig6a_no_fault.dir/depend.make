# Empty dependencies file for fig6a_no_fault.
# This may be replaced when dependencies are built.
