file(REMOVE_RECURSE
  "CMakeFiles/fig6a_no_fault.dir/fig6a_no_fault.cpp.o"
  "CMakeFiles/fig6a_no_fault.dir/fig6a_no_fault.cpp.o.d"
  "fig6a_no_fault"
  "fig6a_no_fault.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6a_no_fault.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
