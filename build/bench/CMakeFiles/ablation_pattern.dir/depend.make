# Empty dependencies file for ablation_pattern.
# This may be replaced when dependencies are built.
