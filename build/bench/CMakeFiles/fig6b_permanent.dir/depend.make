# Empty dependencies file for fig6b_permanent.
# This may be replaced when dependencies are built.
