file(REMOVE_RECURSE
  "CMakeFiles/fig6b_permanent.dir/fig6b_permanent.cpp.o"
  "CMakeFiles/fig6b_permanent.dir/fig6b_permanent.cpp.o.d"
  "fig6b_permanent"
  "fig6b_permanent.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6b_permanent.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
