file(REMOVE_RECURSE
  "CMakeFiles/ablation_sleep.dir/ablation_sleep.cpp.o"
  "CMakeFiles/ablation_sleep.dir/ablation_sleep.cpp.o.d"
  "ablation_sleep"
  "ablation_sleep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_sleep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
