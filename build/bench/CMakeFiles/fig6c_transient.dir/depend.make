# Empty dependencies file for fig6c_transient.
# This may be replaced when dependencies are built.
