file(REMOVE_RECURSE
  "CMakeFiles/fig6c_transient.dir/fig6c_transient.cpp.o"
  "CMakeFiles/fig6c_transient.dir/fig6c_transient.cpp.o.d"
  "fig6c_transient"
  "fig6c_transient.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6c_transient.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
