# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_time[1]_include.cmake")
include("/root/repo/build/tests/test_task[1]_include.cmake")
include("/root/repo/build/tests/test_mk_constraint[1]_include.cmake")
include("/root/repo/build/tests/test_pattern[1]_include.cmake")
include("/root/repo/build/tests/test_rng[1]_include.cmake")
include("/root/repo/build/tests/test_rta[1]_include.cmake")
include("/root/repo/build/tests/test_postponement[1]_include.cmake")
include("/root/repo/build/tests/test_engine[1]_include.cmake")
include("/root/repo/build/tests/test_energy[1]_include.cmake")
include("/root/repo/build/tests/test_fault[1]_include.cmake")
include("/root/repo/build/tests/test_schemes_paper[1]_include.cmake")
include("/root/repo/build/tests/test_schemes_behavior[1]_include.cmake")
include("/root/repo/build/tests/test_workload[1]_include.cmake")
include("/root/repo/build/tests/test_metrics[1]_include.cmake")
include("/root/repo/build/tests/test_report[1]_include.cmake")
include("/root/repo/build/tests/test_harness[1]_include.cmake")
include("/root/repo/build/tests/test_property_theorem1[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_dvs[1]_include.cmake")
include("/root/repo/build/tests/test_io[1]_include.cmake")
include("/root/repo/build/tests/test_engine_fuzz[1]_include.cmake")
include("/root/repo/build/tests/test_exec_model[1]_include.cmake")
include("/root/repo/build/tests/test_decomposition[1]_include.cmake")
include("/root/repo/build/tests/test_analysis_vs_simulation[1]_include.cmake")
