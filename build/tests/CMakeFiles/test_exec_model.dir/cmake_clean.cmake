file(REMOVE_RECURSE
  "CMakeFiles/test_exec_model.dir/test_exec_model.cpp.o"
  "CMakeFiles/test_exec_model.dir/test_exec_model.cpp.o.d"
  "test_exec_model"
  "test_exec_model.pdb"
  "test_exec_model[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_exec_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
