file(REMOVE_RECURSE
  "CMakeFiles/test_rta.dir/test_rta.cpp.o"
  "CMakeFiles/test_rta.dir/test_rta.cpp.o.d"
  "test_rta"
  "test_rta.pdb"
  "test_rta[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rta.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
