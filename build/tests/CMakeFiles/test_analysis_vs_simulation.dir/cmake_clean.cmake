file(REMOVE_RECURSE
  "CMakeFiles/test_analysis_vs_simulation.dir/test_analysis_vs_simulation.cpp.o"
  "CMakeFiles/test_analysis_vs_simulation.dir/test_analysis_vs_simulation.cpp.o.d"
  "test_analysis_vs_simulation"
  "test_analysis_vs_simulation.pdb"
  "test_analysis_vs_simulation[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_analysis_vs_simulation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
