# Empty compiler generated dependencies file for test_analysis_vs_simulation.
# This may be replaced when dependencies are built.
