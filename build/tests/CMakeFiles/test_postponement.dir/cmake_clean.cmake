file(REMOVE_RECURSE
  "CMakeFiles/test_postponement.dir/test_postponement.cpp.o"
  "CMakeFiles/test_postponement.dir/test_postponement.cpp.o.d"
  "test_postponement"
  "test_postponement.pdb"
  "test_postponement[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_postponement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
