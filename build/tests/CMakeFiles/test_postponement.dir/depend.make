# Empty dependencies file for test_postponement.
# This may be replaced when dependencies are built.
