file(REMOVE_RECURSE
  "CMakeFiles/test_schemes_paper.dir/test_schemes_paper.cpp.o"
  "CMakeFiles/test_schemes_paper.dir/test_schemes_paper.cpp.o.d"
  "test_schemes_paper"
  "test_schemes_paper.pdb"
  "test_schemes_paper[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_schemes_paper.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
