# Empty dependencies file for test_schemes_paper.
# This may be replaced when dependencies are built.
