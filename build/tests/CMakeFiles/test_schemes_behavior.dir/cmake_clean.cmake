file(REMOVE_RECURSE
  "CMakeFiles/test_schemes_behavior.dir/test_schemes_behavior.cpp.o"
  "CMakeFiles/test_schemes_behavior.dir/test_schemes_behavior.cpp.o.d"
  "test_schemes_behavior"
  "test_schemes_behavior.pdb"
  "test_schemes_behavior[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_schemes_behavior.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
