file(REMOVE_RECURSE
  "CMakeFiles/test_dvs.dir/test_dvs.cpp.o"
  "CMakeFiles/test_dvs.dir/test_dvs.cpp.o.d"
  "test_dvs"
  "test_dvs.pdb"
  "test_dvs[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dvs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
