file(REMOVE_RECURSE
  "CMakeFiles/test_property_theorem1.dir/test_property_theorem1.cpp.o"
  "CMakeFiles/test_property_theorem1.dir/test_property_theorem1.cpp.o.d"
  "test_property_theorem1"
  "test_property_theorem1.pdb"
  "test_property_theorem1[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_property_theorem1.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
