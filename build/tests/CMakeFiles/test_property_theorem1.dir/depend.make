# Empty dependencies file for test_property_theorem1.
# This may be replaced when dependencies are built.
