# Empty compiler generated dependencies file for test_mk_constraint.
# This may be replaced when dependencies are built.
