file(REMOVE_RECURSE
  "CMakeFiles/test_mk_constraint.dir/test_mk_constraint.cpp.o"
  "CMakeFiles/test_mk_constraint.dir/test_mk_constraint.cpp.o.d"
  "test_mk_constraint"
  "test_mk_constraint.pdb"
  "test_mk_constraint[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mk_constraint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
