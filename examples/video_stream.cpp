// Domain example: a multimedia / time-critical communication workload, the
// application class the paper's introduction motivates ("occasional deadline
// missings are acceptable so long as the user perceived quality of service
// can be assured").
//
// Models a set-top-box-style system:
//   * a 30 fps video decoder that may drop up to 1 frame in any 3 (2,3)-firm,
//   * a 50 Hz audio mixer that tolerates 1 drop in 5 (4,5)-firm,
//   * a 100 Hz sensor/telemetry stream with a loose (2,8) constraint,
//   * a 10 Hz OSD/UI refresh with (1,4),
// running on a standby-sparing dual-core with one permanent-fault budget and
// transient faults at an inflated rate (so the run actually shows recovery).
//
//   $ ./video_stream
#include <cstdio>

#include "mkss.hpp"

using namespace mkss;

int main() {
  const core::TaskSet tasks({
      core::Task::from_ms(10, 10, 2.4, 4, 5, "audio"),      // 100 Hz-ish mixer
      core::Task::from_ms(20, 20, 3, 2, 8, "telemetry"),    // 50 Hz sensors
      core::Task::from_ms(33, 33, 11, 2, 3, "video33"),     // ~30 fps decoder
      core::Task::from_ms(100, 100, 17, 1, 4, "ui"),        // OSD refresh
  });
  std::printf("Workload: %s\n", tasks.describe().c_str());
  std::printf("utilization %.2f, (m,k)-utilization %.2f\n\n",
              tasks.total_utilization(), tasks.total_mk_utilization());

  const auto sched_report = analysis::analyze_schedulability(tasks);
  if (!sched_report.r_pattern_feasible) {
    std::puts("workload not R-pattern schedulable; aborting");
    return 1;
  }

  const core::Ticks horizon = core::from_ms(std::int64_t{6600});  // ~200 video frames
  core::Rng rng(2024);

  report::Table table({"scenario", "scheme", "energy", "vs ST", "frames dropped",
                       "audio drops", "(m,k) ok"});

  for (const auto scenario :
       {fault::Scenario::kNoFault, fault::Scenario::kPermanentOnly,
        fault::Scenario::kPermanentAndTransient}) {
    core::Rng scenario_rng = rng.split();
    // Inflate the transient rate so recoveries actually appear in one run.
    const auto plan =
        fault::make_scenario_plan(scenario, tasks, horizon, 1e-3, scenario_rng);

    double st_energy = 0;
    for (const auto kind : {sched::SchemeKind::kSt, sched::SchemeKind::kDp,
                            sched::SchemeKind::kSelective}) {
      sim::SimConfig cfg;
      cfg.horizon = horizon;
      const auto run = harness::run_one(
          {.ts = tasks, .kind = kind, .faults = plan.get(), .sim = cfg});
      if (kind == sched::SchemeKind::kSt) st_energy = run.energy.total();

      const auto& video = run.qos.per_task[2];
      const auto& audio = run.qos.per_task[0];
      table.add_row({fault::to_string(scenario), sched::to_string(kind),
                     report::fmt(run.energy.total(), 1),
                     report::fmt(run.energy.total() / st_energy, 3),
                     std::to_string(video.missed) + "/" + std::to_string(video.jobs),
                     std::to_string(audio.missed) + "/" + std::to_string(audio.jobs),
                     run.qos.mk_satisfied ? "yes" : "NO"});
    }
  }
  std::printf("%s\n", table.to_string().c_str());
  std::puts("Reading the table: the static schemes (ST, DP) never execute an");
  std::puts("optional frame -- they deliver the contractual minimum QoS (every");
  std::puts("third video frame dropped). MKSS_selective spends part of the");
  std::puts("saved duplication energy on single-copy optional frames and");
  std::puts("delivers (near-)zero drops; every run, faulty or not, passes the");
  std::puts("sliding-window (m,k) audit in the last column.");
  return 0;
}
