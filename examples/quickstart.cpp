// Quickstart: define an (m,k)-firm task set, run it through the paper's
// schemes on the standby-sparing platform, and compare energy + QoS.
//
//   $ ./quickstart
//
// Walks through the typical library workflow:
//   1. build a TaskSet,
//   2. check schedulability (Theorem 1 prerequisite),
//   3. inspect the offline analysis (promotion times, postponement),
//   4. simulate each scheme and account energy,
//   5. audit the (m,k)-deadlines of the traces.
#include <cstdio>

#include "mkss.hpp"

using namespace mkss;

int main() {
  // 1. A small soft real-time workload: (P, D, C, m, k) in milliseconds.
  const core::TaskSet tasks({
      core::Task::from_ms(5, 4, 3, 2, 4, "control"),
      core::Task::from_ms(10, 10, 3, 1, 2, "video"),
  });
  std::printf("Task set: %s\n", tasks.describe().c_str());
  std::printf("total utilization %.2f, (m,k)-utilization %.2f\n\n",
              tasks.total_utilization(), tasks.total_mk_utilization());

  // 2. Schedulability: R-pattern feasibility is what Theorem 1 needs.
  const auto sched_report = analysis::analyze_schedulability(tasks);
  std::printf("R-pattern schedulable: %s, full set schedulable: %s\n",
              sched_report.r_pattern_feasible ? "yes" : "no",
              sched_report.full_set_feasible ? "yes" : "no");

  // 3. Offline analysis: dual-priority promotions vs. release postponement.
  const auto promos = analysis::promotion_times(tasks);
  const auto post = analysis::compute_postponement(tasks);
  for (core::TaskIndex i = 0; i < tasks.size(); ++i) {
    std::printf("  %-8s Y=%-6s theta=%-6s\n", tasks[i].name.c_str(),
                promos[i] ? core::format_ticks(*promos[i]).c_str() : "-",
                core::format_ticks(post.theta(i)).c_str());
  }

  // 4. Simulate one pattern hyperperiod under every scheme.
  const core::Ticks horizon =
      harness::choose_horizon(tasks, core::from_ms(std::int64_t{10000}));
  std::printf("\nSimulating %s with no faults:\n\n",
              core::format_ticks(horizon).c_str());

  report::Table table({"scheme", "energy units", "main", "backup", "optional",
                       "backup share", "(m,k) ok"});
  sim::SimConfig cfg;
  cfg.horizon = horizon;
  for (const auto kind :
       {sched::SchemeKind::kSt, sched::SchemeKind::kDp, sched::SchemeKind::kGreedy,
        sched::SchemeKind::kSelective}) {
    const auto run = harness::run_one({.ts = tasks, .kind = kind, .sim = cfg});
    const auto split = metrics::split_active_energy(run.trace);
    table.add_row({sched::to_string(kind), report::fmt(run.energy.total(), 2),
                   report::fmt(split.main, 1), report::fmt(split.backup, 1),
                   report::fmt(split.optional_jobs, 1),
                   report::fmt_percent(split.backup_share()),
                   run.qos.theorem1_holds() ? "yes" : "NO"});
  }
  std::printf("%s\n", table.to_string().c_str());

  // 5. Show the selective schedule itself.
  sched::MkssSelective selective;
  sim::NoFaultPlan nofault;
  const auto trace = sim::simulate(tasks, selective, nofault, cfg);
  std::printf("MKSS_selective schedule (M main, B backup, O optional):\n%s\n",
              sim::render_gantt(trace, tasks).c_str());
  return 0;
}
