// Reproduces the paper's worked examples (Figures 1-5) with schedules and
// energy figures, printing ASCII Gantt charts next to the numbers the paper
// reports.
//
//   $ ./paper_examples
#include <cstdio>

#include "mkss.hpp"

using namespace mkss;

namespace {

void show(const char* title, const core::TaskSet& ts, sim::Scheme& scheme,
          double horizon_ms, double paper_units) {
  sim::NoFaultPlan nofault;
  sim::SimConfig cfg;
  cfg.horizon = core::from_ms(horizon_ms);
  const auto trace = sim::simulate(ts, scheme, nofault, cfg);
  const double units = core::to_ms(trace.active_time());
  std::printf("%s\n  %s under %s\n", title, ts.describe().c_str(),
              scheme.name().c_str());
  std::printf("  active energy in [0,%g): %.1f units (paper: %.0f)\n", horizon_ms,
              units, paper_units);
  std::printf("%s\n", sim::render_gantt(trace, ts).c_str());
}

}  // namespace

int main() {
  std::puts("=== Figure 1: preference-oriented dual-priority (MKSS_DP) ===");
  {
    sched::MkssDp dp;
    show("Figure 1", workload::paper_fig1_taskset(), dp, 20, 15);
  }

  std::puts("=== Figure 2: dynamic patterns, urgency-limited greedy ===");
  {
    sched::GreedyOptions opts;
    opts.max_selected_fd = 1;
    sched::MkssGreedy greedy(opts);
    show("Figure 2", workload::paper_fig1_taskset(), greedy, 20, 12);
  }

  std::puts("=== Figure 3: fully greedy optional execution ===");
  std::puts("(our faithful greedy also runs tau1's feasible 5th job and the");
  std::puts(" tail job released at t=24, so it lands at 23 vs the paper's 20;");
  std::puts(" the point -- greedy is wasteful -- stands)");
  {
    sched::MkssGreedy greedy;
    show("Figure 3", workload::paper_fig3_taskset(), greedy, 25, 20);
  }

  std::puts("=== Figure 4: MKSS_selective (Algorithm 1) ===");
  {
    sched::MkssSelective selective;
    show("Figure 4", workload::paper_fig3_taskset(), selective, 25, 14);
  }

  std::puts("=== Figure 5: backup release postponement ===");
  {
    const auto ts = workload::paper_fig5_taskset();
    const auto post = analysis::compute_postponement(ts);
    const auto promos = analysis::promotion_times(ts);
    std::printf("  %s\n", ts.describe().c_str());
    for (core::TaskIndex i = 0; i < ts.size(); ++i) {
      std::printf("  theta%zu = %s (paper: %s)   vs promotion Y%zu = %s\n", i + 1,
                  core::format_ticks(post.theta(i)).c_str(), i == 0 ? "7ms" : "4ms",
                  i + 1, core::format_ticks(promos[i].value_or(0)).c_str());
    }
    // Show the postponed backup schedule (spare processor only).
    sched::MkssSelective selective;
    sim::NoFaultPlan nofault;
    sim::SimConfig cfg;
    cfg.horizon = core::from_ms(std::int64_t{30});
    const auto trace = sim::simulate(ts, selective, nofault, cfg);
    std::printf("\n  schedule within one pattern hyperperiod [0,30):\n%s\n",
                sim::render_gantt(trace, ts).c_str());
  }
  return 0;
}
