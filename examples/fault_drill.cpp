// Fault drill: walks one task set through a staged fault storm and shows how
// the standby-sparing platform reacts step by step -- backup cancellation in
// normal operation, transient-fault recovery, and the permanent-fault
// takeover by the survivor.
//
//   $ ./fault_drill [permanent_fault_ms]
#include <cstdio>
#include <cstdlib>

#include "mkss.hpp"

using namespace mkss;

namespace {

/// Fault plan with a scripted permanent instant and transients on chosen jobs.
class DrillPlan final : public sim::FaultPlan {
 public:
  DrillPlan(sim::ProcessorId proc, core::Ticks when) : pf_{proc, when} {}

  std::optional<sim::PermanentFault> permanent() const override { return pf_; }
  bool transient(const core::JobId& job, int slot) const override {
    // The third job of the highest-priority task loses its main copy.
    return slot == 0 && job.task == 0 && job.job == 3;
  }

 private:
  sim::PermanentFault pf_;
};

}  // namespace

int main(int argc, char** argv) {
  const double pf_ms = argc > 1 ? std::atof(argv[1]) : 42.0;

  const core::TaskSet tasks({
      core::Task::from_ms(10, 10, 3, 2, 3, "ctrl"),
      core::Task::from_ms(15, 15, 8, 1, 2, "bulk"),
  });
  std::printf("Task set: %s\n", tasks.describe().c_str());
  std::printf("Drill: transient fault on ctrl job 3's main copy; permanent fault"
              " kills the primary at %gms.\n\n", pf_ms);

  DrillPlan plan(sim::kPrimary, core::from_ms(pf_ms));
  sched::MkssSelective selective;
  sim::SimConfig cfg;
  cfg.horizon = core::from_ms(std::int64_t{90});
  const auto trace = sim::simulate(tasks, selective, plan, cfg);

  std::printf("%s\n", sim::render_gantt(trace, tasks).c_str());

  std::puts("Job log:");
  for (const auto& j : trace.jobs) {
    if (!j.counted) continue;
    std::printf("  %-6s r=%-8s %s%s%s-> %s at %s\n",
                core::to_string(j.job.id).c_str(),
                core::format_ticks(j.job.release).c_str(),
                j.mandatory ? "mandatory " : (j.executed_optional ? "optional  " : "skipped   "),
                j.main_transient_fault ? "[main fault] " : "",
                j.backup_transient_fault ? "[backup fault] " : "",
                j.outcome == core::JobOutcome::kMet ? "met" : "MISS",
                core::format_ticks(j.resolved_at).c_str());
  }

  const auto qos = metrics::audit_qos(trace, tasks);
  const auto energy = energy::account_energy(trace);
  std::printf("\nprimary died at %s; energy %.1f units (%.1f before adding idle"
              " charges); (m,k) satisfied: %s; mandatory misses: %llu\n",
              core::format_ticks(trace.death_time[sim::kPrimary]).c_str(),
              energy.total(), energy.active_total(),
              qos.mk_satisfied ? "yes" : "NO",
              static_cast<unsigned long long>(qos.mandatory_misses));
  return 0;
}
