// Design-space exploration: how does the (m,k) contract itself trade QoS
// against energy under MKSS_selective?
//
// A system designer rarely gets (m,k) handed down -- they pick the weakest
// contract the application tolerates. This example fixes a two-task workload
// and sweeps the video task's (m,k) from hard real-time (k,k-ish) down to
// very loose, reporting delivered QoS, energy, and how the scheme's
// mandatory/optional mix shifts.
//
//   $ ./design_space
#include <cstdio>

#include "mkss.hpp"

using namespace mkss;

int main() {
  report::Table table({"video (m,k)", "mk-util", "schedulable", "energy",
                       "video delivered", "mandatory", "optional run",
                       "skipped", "(m,k) ok"});

  const std::pair<std::uint32_t, std::uint32_t> contracts[] = {
      {1, 1}, {4, 5}, {3, 4}, {2, 3}, {1, 2}, {2, 5}, {1, 3}, {1, 5},
  };
  for (const auto& [m, k] : contracts) {
    const core::TaskSet tasks({
        core::Task::from_ms(5, 5, 2, 1, 1, "control"),   // hard real-time
        core::Task::from_ms(10, 10, 6, m, k, "video"),
    });
    const bool feasible =
        analysis::schedulable(tasks, analysis::DemandModel::kRPatternMandatory);

    sched::MkssSelective scheme;
    sim::SimConfig cfg;
    // A common horizon (300 video frames) keeps the energy column comparable
    // across contracts.
    cfg.horizon = core::from_ms(std::int64_t{3000});
    const auto run = harness::run_one({.ts = tasks, .scheme = &scheme, .sim = cfg});
    const auto& video = run.qos.per_task[1];

    char contract[16], delivered[32];
    std::snprintf(contract, sizeof contract, "(%u,%u)", m, k);
    std::snprintf(delivered, sizeof delivered, "%llu/%llu (%.0f%%)",
                  static_cast<unsigned long long>(video.met),
                  static_cast<unsigned long long>(video.jobs),
                  100.0 * (1.0 - video.miss_rate()));
    table.add_row({contract, report::fmt(tasks.total_mk_utilization(), 2),
                   feasible ? "yes" : "no", report::fmt(run.energy.total(), 1),
                   delivered, std::to_string(run.trace.stats.mandatory_jobs),
                   std::to_string(run.trace.stats.optional_selected),
                   std::to_string(run.trace.stats.optional_skipped),
                   run.qos.mk_satisfied ? "yes" : "NO"});
  }
  std::printf("%s\n", table.to_string().c_str());
  std::puts("Reading the table top to bottom: weakening the contract sheds");
  std::puts("energy in quantized steps. (1,1) duplicates every video job.");
  std::puts("Any contract with k - m = 1 -- (4,5), (3,4), (2,3), (1,2) --");
  std::puts("behaves identically under the FD==1 selection rule: every job");
  std::puts("has FD 1, so the whole stream runs as single-copy optional jobs");
  std::puts("(100% delivered, no duplication). Only genuinely loose contracts");
  std::puts("((2,5), (1,3), (1,5)) start skipping frames, delivering roughly");
  std::puts("m/(k-1) of the stream. Every row passes the sliding-window audit;");
  std::puts("a designer reads this table right-to-left: pick the cheapest row");
  std::puts("whose delivered QoS is acceptable.");
  return 0;
}
